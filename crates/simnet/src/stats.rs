//! Measurement: traffic accounting, histograms, time series, and the
//! paper's four query metrics.
//!
//! §6 of the paper evaluates four metrics:
//!
//! * **Background traffic** — average bps per content/directory peer
//!   due to gossip and push exchanges;
//! * **Hit ratio** — fraction of queries satisfied from the P2P
//!   system;
//! * **Lookup latency** — average latency to resolve a query (reach
//!   the entity that will provide the object);
//! * **Transfer distance** — network distance (latency) between the
//!   querying peer and the provider.
//!
//! [`Traffic`] implements the first (bytes per node per class with a
//! windowed series), [`QueryStats`] the other three (averages,
//! fixed-width distributions as in Figures 7(b)/8(b), and windowed
//! series as in Figures 5–8(a)).
//!
//! ## Sharded accumulation
//!
//! The sharded engine keeps one instance of each accumulator per
//! shard and combines them at read time. All counters are integers
//! (or integer-valued `f64` sums, for which IEEE addition is exact),
//! so the merged totals are bit-equal no matter how the simulation
//! was partitioned. Per-shard traffic lives in a [`ShardTraffic`]
//! whose rows cover only the shard's *own* nodes (dense local
//! indices); the engine folds them into one global [`Traffic`] view
//! on demand. The cumulative hit-ratio curve is streamed into
//! fixed-width time buckets as resolutions happen — every accumulator
//! is O(nodes + buckets), never O(events).

use crate::time::{SimDuration, SimTime};
use crate::topology::NodeId;

/// Classification of simulated messages, used to separate the paper's
/// "background traffic" (gossip + push) from query processing and DHT
/// maintenance.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum TrafficClass {
    /// Periodic gossip exchanges within content overlays (Alg. 4).
    Gossip,
    /// One-way content pushes to the directory peer (Alg. 5).
    Push,
    /// Keepalive probes (Sec. 5.1).
    KeepAlive,
    /// DHT key-based routing hops (Alg. 1/2).
    DhtRouting,
    /// DHT maintenance: join, stabilize, fix-fingers.
    DhtMaintenance,
    /// Query control traffic: submissions, redirections, serve notices.
    QueryControl,
    /// Object payload transfers.
    Transfer,
}

impl TrafficClass {
    /// All classes, for iteration/reporting.
    pub const ALL: [TrafficClass; 7] = [
        TrafficClass::Gossip,
        TrafficClass::Push,
        TrafficClass::KeepAlive,
        TrafficClass::DhtRouting,
        TrafficClass::DhtMaintenance,
        TrafficClass::QueryControl,
        TrafficClass::Transfer,
    ];

    /// Dense index for array-backed accounting.
    pub fn index(self) -> usize {
        match self {
            TrafficClass::Gossip => 0,
            TrafficClass::Push => 1,
            TrafficClass::KeepAlive => 2,
            TrafficClass::DhtRouting => 3,
            TrafficClass::DhtMaintenance => 4,
            TrafficClass::QueryControl => 5,
            TrafficClass::Transfer => 6,
        }
    }

    /// True for the classes the paper counts as background traffic
    /// (gossip and push exchanges).
    pub fn is_background(self) -> bool {
        matches!(self, TrafficClass::Gossip | TrafficClass::Push)
    }
}

const N_CLASSES: usize = TrafficClass::ALL.len();

/// Per-node, per-class byte counters plus a windowed background-bytes
/// series (for Figure 5).
#[derive(Clone, Debug)]
pub struct Traffic {
    /// `sent[node][class]` = bytes sent.
    sent: Vec<[u64; N_CLASSES]>,
    /// `recv[node][class]` = bytes received.
    recv: Vec<[u64; N_CLASSES]>,
    /// Background (gossip+push) bytes, windowed over time.
    background_series: TimeSeries,
    messages: u64,
    /// Message counts per class (system-wide).
    msgs_by_class: [u64; N_CLASSES],
}

impl Traffic {
    /// Accounting for `nodes` nodes with the given series window.
    pub fn new(nodes: usize, window: SimDuration) -> Self {
        Traffic {
            sent: vec![[0; N_CLASSES]; nodes],
            recv: vec![[0; N_CLASSES]; nodes],
            background_series: TimeSeries::new(window),
            messages: 0,
            msgs_by_class: [0; N_CLASSES],
        }
    }

    /// Record one message of `bytes` bytes from `from` to `to`.
    pub fn record(
        &mut self,
        at: SimTime,
        from: NodeId,
        to: NodeId,
        class: TrafficClass,
        bytes: u32,
    ) {
        let c = class.index();
        self.sent[from.idx()][c] += bytes as u64;
        self.recv[to.idx()][c] += bytes as u64;
        self.messages += 1;
        self.msgs_by_class[c] += 1;
        if class.is_background() {
            // Both endpoints experience the bytes (the paper's metric
            // is "traffic experienced by a peer").
            self.background_series.record(at, 2.0 * bytes as f64);
        }
    }

    /// Total messages recorded.
    pub fn messages(&self) -> u64 {
        self.messages
    }

    /// Messages recorded in one class (system-wide).
    pub fn messages_in(&self, class: TrafficClass) -> u64 {
        self.msgs_by_class[class.index()]
    }

    /// Bytes sent by `node` in `class`.
    pub fn sent_bytes(&self, node: NodeId, class: TrafficClass) -> u64 {
        self.sent[node.idx()][class.index()]
    }

    /// Bytes received by `node` in `class`.
    pub fn recv_bytes(&self, node: NodeId, class: TrafficClass) -> u64 {
        self.recv[node.idx()][class.index()]
    }

    /// Background bytes (gossip + push, sent + received) experienced
    /// by `node`.
    pub fn background_bytes(&self, node: NodeId) -> u64 {
        TrafficClass::ALL
            .iter()
            .filter(|c| c.is_background())
            .map(|c| self.sent_bytes(node, *c) + self.recv_bytes(node, *c))
            .sum()
    }

    /// Total bytes across all nodes in `class` (sent side only, to
    /// avoid double counting when summing system-wide).
    pub fn total_sent(&self, class: TrafficClass) -> u64 {
        self.sent.iter().map(|row| row[class.index()]).sum()
    }

    /// The paper's background-traffic metric: average bits/second
    /// experienced per participant, over `participants` peers and
    /// `elapsed` simulated time.
    pub fn background_bps(&self, participants: &[NodeId], elapsed: SimDuration) -> f64 {
        if participants.is_empty() || elapsed.is_zero() {
            return 0.0;
        }
        let bytes: u64 = participants.iter().map(|n| self.background_bytes(*n)).sum();
        (bytes as f64 * 8.0) / participants.len() as f64 / elapsed.as_secs_f64()
    }

    /// Windowed background-bytes series (sum of bytes experienced per
    /// window across all peers). Use together with a participant-count
    /// series to produce Figure 5.
    pub fn background_series(&self) -> &TimeSeries {
        &self.background_series
    }

    /// Fold another shard's accounting into this one. Both must cover
    /// the same node universe and window.
    pub fn merge_from(&mut self, other: &Traffic) {
        assert_eq!(self.sent.len(), other.sent.len(), "node universes differ");
        for (a, b) in self.sent.iter_mut().zip(&other.sent) {
            for (x, y) in a.iter_mut().zip(b) {
                *x += *y;
            }
        }
        for (a, b) in self.recv.iter_mut().zip(&other.recv) {
            for (x, y) in a.iter_mut().zip(b) {
                *x += *y;
            }
        }
        self.background_series.merge_from(&other.background_series);
        self.messages += other.messages;
        for (a, b) in self.msgs_by_class.iter_mut().zip(&other.msgs_by_class) {
            *a += *b;
        }
    }

    /// Scatter a shard's dense accounting into this global view. Each
    /// shard row is indexed by the shard's local node index; the
    /// shard's member table maps it back to the global id.
    pub fn absorb_shard(&mut self, shard: &ShardTraffic) {
        for (li, node) in shard.members.iter().enumerate() {
            let sent = &mut self.sent[node.idx()];
            let recv = &mut self.recv[node.idx()];
            for c in 0..N_CLASSES {
                sent[c] += shard.sent[li][c];
                recv[c] += shard.recv[li][c];
            }
        }
        self.background_series.merge_from(&shard.background_series);
        self.messages += shard.messages;
        for (a, b) in self.msgs_by_class.iter_mut().zip(&shard.msgs_by_class) {
            *a += *b;
        }
    }
}

/// One shard's traffic accounting: per-class byte rows for the
/// shard's *own* nodes only, indexed by the dense local index the
/// engine's placement assigns. A sharded run used to replicate the
/// full `O(all nodes)` [`Traffic`] table per shard; at a million
/// nodes × 8 shards those replicas alone were ~1.8 GB. Send bytes are
/// recorded where the sender executes and receive bytes where the
/// wire message is delivered — both are, by construction, nodes of
/// the recording shard — so rows never index foreign nodes and the
/// fold into the global [`Traffic`] view ([`Traffic::absorb_shard`])
/// is a disjoint scatter.
#[derive(Clone, Debug)]
pub struct ShardTraffic {
    /// Global node id of each local row: `members[local] = node`.
    members: Vec<NodeId>,
    /// `sent[local][class]` = bytes sent by the shard's node `local`.
    sent: Vec<[u64; N_CLASSES]>,
    /// `recv[local][class]` = bytes received by node `local`.
    recv: Vec<[u64; N_CLASSES]>,
    /// Background (gossip+push) bytes, windowed; recorded at send
    /// time for both endpoints, exactly like the unsharded metric.
    background_series: TimeSeries,
    messages: u64,
    msgs_by_class: [u64; N_CLASSES],
}

impl ShardTraffic {
    /// Accounting for a shard owning `members` (local index order).
    pub fn new(members: Vec<NodeId>, window: SimDuration) -> Self {
        let n = members.len();
        ShardTraffic {
            members,
            sent: vec![[0; N_CLASSES]; n],
            recv: vec![[0; N_CLASSES]; n],
            background_series: TimeSeries::new(window),
            messages: 0,
            msgs_by_class: [0; N_CLASSES],
        }
    }

    /// The series window.
    pub fn window(&self) -> SimDuration {
        self.background_series.window()
    }

    /// Record one message of `bytes` bytes sent by local node `local`.
    /// Counts the message and, for background classes, both endpoints'
    /// bytes into the windowed series (the receive *row* is updated at
    /// delivery time on the destination's shard via
    /// [`ShardTraffic::record_recv`]).
    #[inline]
    pub fn record_sent(&mut self, at: SimTime, local: usize, class: TrafficClass, bytes: u32) {
        let c = class.index();
        self.sent[local][c] += bytes as u64;
        self.messages += 1;
        self.msgs_by_class[c] += 1;
        if class.is_background() {
            // Both endpoints experience the bytes (the paper's metric
            // is "traffic experienced by a peer").
            self.background_series.record(at, 2.0 * bytes as f64);
        }
    }

    /// Record the receipt of a wire message by local node `local`.
    #[inline]
    pub fn record_recv(&mut self, local: usize, class: TrafficClass, bytes: u32) {
        self.recv[local][class.index()] += bytes as u64;
    }

    /// Total messages recorded by this shard.
    pub fn messages(&self) -> u64 {
        self.messages
    }
}

/// A fixed-width-bucket histogram over `u64` values (milliseconds in
/// practice). The last bucket is an unbounded overflow bucket, which
/// directly expresses the paper's ">1050 ms" tail of Figure 7(b).
#[derive(Clone, Debug)]
pub struct Histogram {
    bucket_width: u64,
    counts: Vec<u64>,
    total: u64,
    sum: u128,
    max: u64,
}

impl Histogram {
    /// `buckets` finite buckets of `bucket_width` each plus an
    /// overflow bucket.
    pub fn new(bucket_width: u64, buckets: usize) -> Self {
        assert!(bucket_width > 0, "bucket width must be positive");
        Histogram {
            bucket_width,
            counts: vec![0; buckets + 1],
            total: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Record one observation.
    pub fn record(&mut self, value: u64) {
        let idx = ((value / self.bucket_width) as usize).min(self.counts.len() - 1);
        self.counts[idx] += 1;
        self.total += 1;
        self.sum += value as u128;
        self.max = self.max.max(value);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Mean of all observations (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// Largest recorded value.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Fraction of observations `<= threshold`. `threshold` should be
    /// a bucket boundary; values inside a bucket count as below it
    /// only if their whole bucket is below.
    pub fn fraction_le(&self, threshold: u64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let full = (threshold / self.bucket_width) as usize;
        let c: u64 = self.counts.iter().take(full.min(self.counts.len())).sum();
        c as f64 / self.total as f64
    }

    /// Fraction of observations strictly greater than `threshold`.
    pub fn fraction_gt(&self, threshold: u64) -> f64 {
        1.0 - self.fraction_le(threshold)
    }

    /// `(bucket_start_inclusive, fraction)` rows, overflow last (its
    /// start is `buckets * width`).
    pub fn distribution(&self) -> Vec<(u64, f64)> {
        let t = self.total.max(1) as f64;
        self.counts
            .iter()
            .enumerate()
            .map(|(i, c)| (i as u64 * self.bucket_width, *c as f64 / t))
            .collect()
    }

    /// The configured bucket width.
    pub fn bucket_width(&self) -> u64 {
        self.bucket_width
    }

    /// Fold another histogram (same shape) into this one.
    pub fn merge_from(&mut self, other: &Histogram) {
        assert_eq!(
            self.bucket_width, other.bucket_width,
            "bucket widths differ"
        );
        assert_eq!(
            self.counts.len(),
            other.counts.len(),
            "bucket counts differ"
        );
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += *b;
        }
        self.total += other.total;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }
}

/// One reported point of a [`TimeSeries`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SeriesPoint {
    /// Start of the window.
    pub at: SimTime,
    /// Sum of recorded values in the window.
    pub sum: f64,
    /// Number of records in the window.
    pub count: u64,
}

impl SeriesPoint {
    /// Mean of the window's values (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

/// A windowed accumulator: values recorded at simulated times are
/// bucketed into fixed windows. Reproduces the paper's
/// "metric variation with time" plots (Figures 5, 7(a), 8(a)).
#[derive(Clone, Debug)]
pub struct TimeSeries {
    window: SimDuration,
    buckets: Vec<(f64, u64)>,
}

impl TimeSeries {
    /// A series with the given window width.
    pub fn new(window: SimDuration) -> Self {
        assert!(!window.is_zero(), "series window must be positive");
        TimeSeries {
            window,
            buckets: Vec::new(),
        }
    }

    /// Record `value` at time `at`.
    pub fn record(&mut self, at: SimTime, value: f64) {
        let idx = (at.as_ms() / self.window.as_ms()) as usize;
        if idx >= self.buckets.len() {
            self.buckets.resize(idx + 1, (0.0, 0));
        }
        let b = &mut self.buckets[idx];
        b.0 += value;
        b.1 += 1;
    }

    /// The window width.
    pub fn window(&self) -> SimDuration {
        self.window
    }

    /// All windows in time order (including empty ones).
    pub fn points(&self) -> Vec<SeriesPoint> {
        self.buckets
            .iter()
            .enumerate()
            .map(|(i, (sum, count))| SeriesPoint {
                at: SimTime::from_ms(i as u64 * self.window.as_ms()),
                sum: *sum,
                count: *count,
            })
            .collect()
    }

    /// Fold another series (same window) into this one, bucket by
    /// bucket.
    pub fn merge_from(&mut self, other: &TimeSeries) {
        assert_eq!(self.window, other.window, "series windows differ");
        if other.buckets.len() > self.buckets.len() {
            self.buckets.resize(other.buckets.len(), (0.0, 0));
        }
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            a.0 += b.0;
            a.1 += b.1;
        }
    }

    /// Mean value over all records in all windows.
    pub fn overall_mean(&self) -> f64 {
        let (s, c) = self
            .buckets
            .iter()
            .fold((0.0, 0u64), |(s, c), (bs, bc)| (s + bs, c + bc));
        if c == 0 {
            0.0
        } else {
            s / c as f64
        }
    }
}

/// Who ultimately served a query.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ServedBy {
    /// The requester's own cache — a P2P hit with no network transfer
    /// at all, therefore excluded from the transfer-distance metric
    /// ("the network distance from the querying peer to the peer that
    /// will provide the object" — there is no providing peer).
    OwnCache,
    /// A content peer of the requester's own locality's overlay.
    LocalOverlay,
    /// A content peer of another locality's overlay (directory
    /// summaries redirection).
    RemoteOverlay,
    /// The origin web server (a P2P miss).
    OriginServer,
}

/// The paper's per-query metrics, aggregated.
///
/// Hit ratio, lookup latency and transfer distance are recorded at
/// query resolution time by the querying peer. Distributions use
/// 150 ms buckets for lookup latency and 100 ms buckets for transfer
/// distance, mirroring Figures 7(b) and 8(b).
#[derive(Clone, Debug)]
pub struct QueryStats {
    submitted: u64,
    hits: u64,
    misses: u64,
    local_hits: u64,
    remote_hits: u64,
    lookup_hist: Histogram,
    transfer_hist: Histogram,
    /// Transfer distances of P2P hits only (the paper: "used with
    /// queries satisfied from the P2P system").
    transfer_hits_hist: Histogram,
    hit_series: TimeSeries,
    lookup_series: TimeSeries,
    transfer_series: TimeSeries,
    /// Width (ms) of the cumulative hit-curve buckets: a fixed
    /// subdivision of the series window, derived purely from config so
    /// every shard buckets identically and merging is an elementwise
    /// add. Replaces the old one-entry-per-resolution log, which grew
    /// O(events).
    cum_width_ms: u64,
    /// `(hits, resolved)` per `cum_width_ms`-wide bucket since t = 0.
    cum_buckets: Vec<(u64, u64)>,
    redirection_failures: u64,
}

impl QueryStats {
    /// Fresh statistics; `window` is the series window (the paper
    /// plots 24 h runs, so 30-minute windows work well).
    pub fn new(window: SimDuration) -> Self {
        QueryStats {
            submitted: 0,
            hits: 0,
            misses: 0,
            local_hits: 0,
            remote_hits: 0,
            // 150 ms buckets up to 1050 ms + overflow (Fig. 7(b)).
            lookup_hist: Histogram::new(150, 7),
            // 100 ms buckets up to 500 ms + overflow (Fig. 8(b)).
            transfer_hist: Histogram::new(100, 5),
            transfer_hits_hist: Histogram::new(100, 5),
            hit_series: TimeSeries::new(window),
            lookup_series: TimeSeries::new(window),
            transfer_series: TimeSeries::new(window),
            // 30 points per window keeps the convergence curve smooth
            // at any experiment scale without logging every event.
            cum_width_ms: (window.as_ms() / 30).max(1),
            cum_buckets: Vec::new(),
            redirection_failures: 0,
        }
    }

    /// Note a query submission.
    pub fn on_submit(&mut self) {
        self.submitted += 1;
    }

    /// Record a resolved query.
    ///
    /// * `node` — the resolving (querying) peer (bucketed stats no
    ///   longer depend on it, but the signature keeps the recording
    ///   site honest about who resolved);
    /// * `lookup_ms` — latency from submission until the provider was
    ///   identified;
    /// * `transfer_ms` — link latency between requester and provider;
    /// * `served_by` — provider kind (peer ⇒ hit, server ⇒ miss).
    pub fn on_resolved(
        &mut self,
        at: SimTime,
        node: NodeId,
        lookup_ms: u64,
        transfer_ms: u64,
        served_by: ServedBy,
    ) {
        let _ = node;
        let hit = served_by != ServedBy::OriginServer;
        if hit {
            self.hits += 1;
            match served_by {
                ServedBy::OwnCache | ServedBy::LocalOverlay => self.local_hits += 1,
                ServedBy::RemoteOverlay => self.remote_hits += 1,
                ServedBy::OriginServer => unreachable!(),
            }
        } else {
            self.misses += 1;
        }
        self.lookup_hist.record(lookup_ms);
        self.lookup_series.record(at, lookup_ms as f64);
        self.hit_series.record(at, if hit { 1.0 } else { 0.0 });
        // Transfer distance: own-cache hits involve no transfer and
        // are excluded (Figure 8 measures actual transfers: peers and
        // the early server-dominated phase).
        if served_by != ServedBy::OwnCache {
            self.transfer_hist.record(transfer_ms);
            self.transfer_series.record(at, transfer_ms as f64);
            if hit {
                self.transfer_hits_hist.record(transfer_ms);
            }
        }
        let bucket = (at.as_ms() / self.cum_width_ms) as usize;
        if bucket >= self.cum_buckets.len() {
            self.cum_buckets.resize(bucket + 1, (0, 0));
        }
        let slot = &mut self.cum_buckets[bucket];
        slot.0 += u64::from(hit);
        slot.1 += 1;
    }

    /// Note a redirection failure (stale directory entry; Sec. 5.1).
    pub fn on_redirection_failure(&mut self) {
        self.redirection_failures += 1;
    }

    /// Queries submitted.
    pub fn submitted(&self) -> u64 {
        self.submitted
    }

    /// Queries resolved (hit or miss).
    pub fn resolved(&self) -> u64 {
        self.hits + self.misses
    }

    /// The paper's hit ratio: fraction of queries satisfied by the P2P
    /// system.
    pub fn hit_ratio(&self) -> f64 {
        let r = self.resolved();
        if r == 0 {
            0.0
        } else {
            self.hits as f64 / r as f64
        }
    }

    /// Fraction of hits served within the requester's own locality.
    pub fn local_hit_fraction(&self) -> f64 {
        if self.hits == 0 {
            0.0
        } else {
            self.local_hits as f64 / self.hits as f64
        }
    }

    /// Hits served by another locality's overlay.
    pub fn remote_hits(&self) -> u64 {
        self.remote_hits
    }

    /// Mean lookup latency (ms).
    pub fn mean_lookup_ms(&self) -> f64 {
        self.lookup_hist.mean()
    }

    /// Mean transfer distance (ms).
    pub fn mean_transfer_ms(&self) -> f64 {
        self.transfer_hist.mean()
    }

    /// Lookup-latency distribution (Fig. 7(b)).
    pub fn lookup_hist(&self) -> &Histogram {
        &self.lookup_hist
    }

    /// Transfer-distance distribution (Fig. 8(b)).
    pub fn transfer_hist(&self) -> &Histogram {
        &self.transfer_hist
    }

    /// Transfer-distance distribution restricted to P2P hits.
    pub fn transfer_hit_hist(&self) -> &Histogram {
        &self.transfer_hits_hist
    }

    /// Mean transfer distance of P2P hits (ms).
    pub fn mean_transfer_hit_ms(&self) -> f64 {
        self.transfer_hits_hist.mean()
    }

    /// Windowed hit ratio over time (Figures 5/6): mean of the 0/1 hit
    /// indicator per window.
    pub fn hit_series(&self) -> &TimeSeries {
        &self.hit_series
    }

    /// Windowed mean lookup latency over time (Fig. 7(a)).
    pub fn lookup_series(&self) -> &TimeSeries {
        &self.lookup_series
    }

    /// Windowed mean transfer distance over time (Fig. 8(a)).
    pub fn transfer_series(&self) -> &TimeSeries {
        &self.transfer_series
    }

    /// Cumulative hit ratio over time (smooth convergence curve for
    /// Figure 6): one point per non-empty time bucket, carrying the
    /// ratio over *all* resolutions up to that bucket's end. Buckets
    /// are fixed-width and config-derived, so the curve is identical
    /// for any shard layout; the final point equals
    /// [`QueryStats::hit_ratio`].
    pub fn cumulative_hit_series(&self) -> Vec<(SimTime, f64)> {
        let mut out = Vec::new();
        let mut hits = 0u64;
        let mut resolved = 0u64;
        for (b, &(h, r)) in self.cum_buckets.iter().enumerate() {
            if r == 0 {
                continue;
            }
            hits += h;
            resolved += r;
            let end = SimTime::from_ms((b as u64 + 1) * self.cum_width_ms);
            out.push((end, hits as f64 / resolved as f64));
        }
        out
    }

    /// Redirection failures observed (Sec. 5.1).
    pub fn redirection_failures(&self) -> u64 {
        self.redirection_failures
    }

    /// Fold another shard's query metrics into this one.
    pub fn merge_from(&mut self, other: &QueryStats) {
        self.submitted += other.submitted;
        self.hits += other.hits;
        self.misses += other.misses;
        self.local_hits += other.local_hits;
        self.remote_hits += other.remote_hits;
        self.lookup_hist.merge_from(&other.lookup_hist);
        self.transfer_hist.merge_from(&other.transfer_hist);
        self.transfer_hits_hist
            .merge_from(&other.transfer_hits_hist);
        self.hit_series.merge_from(&other.hit_series);
        self.lookup_series.merge_from(&other.lookup_series);
        self.transfer_series.merge_from(&other.transfer_series);
        assert_eq!(
            self.cum_width_ms, other.cum_width_ms,
            "bucket widths differ"
        );
        if other.cum_buckets.len() > self.cum_buckets.len() {
            self.cum_buckets.resize(other.cum_buckets.len(), (0, 0));
        }
        for (a, b) in self.cum_buckets.iter_mut().zip(&other.cum_buckets) {
            a.0 += b.0;
            a.1 += b.1;
        }
        self.redirection_failures += other.redirection_failures;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traffic_accounting_by_class() {
        let mut t = Traffic::new(3, SimDuration::from_mins(30));
        t.record(
            SimTime::ZERO,
            NodeId(0),
            NodeId(1),
            TrafficClass::Gossip,
            100,
        );
        t.record(SimTime::ZERO, NodeId(1), NodeId(0), TrafficClass::Push, 50);
        t.record(
            SimTime::ZERO,
            NodeId(0),
            NodeId(2),
            TrafficClass::DhtRouting,
            10,
        );
        assert_eq!(t.sent_bytes(NodeId(0), TrafficClass::Gossip), 100);
        assert_eq!(t.recv_bytes(NodeId(1), TrafficClass::Gossip), 100);
        assert_eq!(t.background_bytes(NodeId(0)), 150); // gossip sent + push recv
        assert_eq!(t.background_bytes(NodeId(1)), 150);
        assert_eq!(t.background_bytes(NodeId(2)), 0); // routing is not background
        assert_eq!(t.messages(), 3);
    }

    #[test]
    fn background_bps_definition() {
        let mut t = Traffic::new(2, SimDuration::from_mins(30));
        // 1000 bytes of gossip each way over 10 seconds between two peers.
        t.record(
            SimTime::ZERO,
            NodeId(0),
            NodeId(1),
            TrafficClass::Gossip,
            1000,
        );
        t.record(
            SimTime::ZERO,
            NodeId(1),
            NodeId(0),
            TrafficClass::Gossip,
            1000,
        );
        let bps = t.background_bps(&[NodeId(0), NodeId(1)], SimDuration::from_secs(10));
        // Each peer experienced 2000 bytes = 16000 bits over 10 s = 1600 bps.
        assert!((bps - 1600.0).abs() < 1e-9, "bps = {bps}");
    }

    #[test]
    fn background_bps_empty_cases() {
        let t = Traffic::new(1, SimDuration::from_mins(1));
        assert_eq!(t.background_bps(&[], SimDuration::from_secs(10)), 0.0);
        assert_eq!(t.background_bps(&[NodeId(0)], SimDuration::ZERO), 0.0);
    }

    #[test]
    fn histogram_buckets_and_fractions() {
        let mut h = Histogram::new(150, 7);
        for v in [10, 140, 149, 150, 600, 2000] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        // <=150 counts only bucket [0,150): 3 observations.
        assert!((h.fraction_le(150) - 0.5).abs() < 1e-9);
        assert!((h.fraction_gt(1050) - (1.0 / 6.0)).abs() < 1e-9);
        assert_eq!(h.max(), 2000);
        let mean = (10 + 140 + 149 + 150 + 600 + 2000) as f64 / 6.0;
        assert!((h.mean() - mean).abs() < 1e-9);
    }

    #[test]
    fn histogram_distribution_sums_to_one() {
        let mut h = Histogram::new(100, 5);
        for v in 0..1000 {
            h.record(v * 3);
        }
        let total: f64 = h.distribution().iter().map(|(_, f)| f).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_histogram_is_sane() {
        let h = Histogram::new(10, 3);
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.fraction_le(10), 0.0);
    }

    #[test]
    fn series_windows() {
        let mut s = TimeSeries::new(SimDuration::from_secs(10));
        s.record(SimTime::from_secs(1), 1.0);
        s.record(SimTime::from_secs(9), 3.0);
        s.record(SimTime::from_secs(15), 10.0);
        let pts = s.points();
        assert_eq!(pts.len(), 2);
        assert_eq!(pts[0].count, 2);
        assert!((pts[0].mean() - 2.0).abs() < 1e-9);
        assert!((pts[1].mean() - 10.0).abs() < 1e-9);
        assert!((s.overall_mean() - 14.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn query_stats_hit_ratio() {
        let mut q = QueryStats::new(SimDuration::from_mins(30));
        q.on_submit();
        q.on_submit();
        q.on_submit();
        q.on_resolved(
            SimTime::from_secs(1),
            NodeId(1),
            120,
            40,
            ServedBy::LocalOverlay,
        );
        q.on_resolved(
            SimTime::from_secs(2),
            NodeId(2),
            900,
            300,
            ServedBy::OriginServer,
        );
        q.on_resolved(
            SimTime::from_secs(3),
            NodeId(3),
            200,
            90,
            ServedBy::RemoteOverlay,
        );
        assert_eq!(q.submitted(), 3);
        assert_eq!(q.resolved(), 3);
        assert!((q.hit_ratio() - 2.0 / 3.0).abs() < 1e-9);
        assert!((q.local_hit_fraction() - 0.5).abs() < 1e-9);
        assert_eq!(q.remote_hits(), 1);
        assert!((q.mean_lookup_ms() - (120.0 + 900.0 + 200.0) / 3.0).abs() < 1e-9);
        // 30-minute window ⇒ 60 s cumulative buckets; all three
        // resolutions land in bucket 0.
        let cum = q.cumulative_hit_series();
        assert_eq!(cum.len(), 1);
        assert!((cum[0].1 - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn cumulative_series_is_insertion_order_independent() {
        // 30 s window ⇒ 1 s buckets. Recording order must not matter:
        // the curve is rebuilt from fixed time buckets, not a log.
        let obs = [
            (2u64, NodeId(9), ServedBy::OriginServer),
            (1, NodeId(5), ServedBy::LocalOverlay),
            (2, NodeId(3), ServedBy::LocalOverlay),
        ];
        let mut fwd = QueryStats::new(SimDuration::from_secs(30));
        let mut rev = QueryStats::new(SimDuration::from_secs(30));
        for (t, n, s) in obs {
            fwd.on_resolved(SimTime::from_secs(t), n, 10, 10, s);
        }
        for (t, n, s) in obs.into_iter().rev() {
            rev.on_resolved(SimTime::from_secs(t), n, 10, 10, s);
        }
        let cum = fwd.cumulative_hit_series();
        assert_eq!(cum, rev.cumulative_hit_series());
        // Bucket [1 s, 2 s): one hit; bucket [2 s, 3 s): 2/3 overall.
        assert_eq!(cum.len(), 2);
        assert_eq!(cum[0].0, SimTime::from_secs(2));
        assert!((cum[0].1 - 1.0).abs() < 1e-12);
        assert_eq!(cum[1].0, SimTime::from_secs(3));
        assert!((cum[1].1 - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn shard_traffic_absorbs_into_global_view() {
        let w = SimDuration::from_mins(1);
        // Shard A owns nodes {0, 2}; shard B owns {1, 3}.
        let mut a = ShardTraffic::new(vec![NodeId(0), NodeId(2)], w);
        let mut b = ShardTraffic::new(vec![NodeId(1), NodeId(3)], w);
        // 0 → 1: gossip, 100 bytes (send on A, receipt on B).
        a.record_sent(SimTime::ZERO, 0, TrafficClass::Gossip, 100);
        b.record_recv(0, TrafficClass::Gossip, 100);
        // 3 → 2: push, 40 bytes (send on B, receipt on A).
        b.record_sent(SimTime::from_secs(1), 1, TrafficClass::Push, 40);
        a.record_recv(1, TrafficClass::Push, 40);

        // The same history recorded unsharded.
        let mut whole = Traffic::new(4, w);
        whole.record(
            SimTime::ZERO,
            NodeId(0),
            NodeId(1),
            TrafficClass::Gossip,
            100,
        );
        whole.record(
            SimTime::from_secs(1),
            NodeId(3),
            NodeId(2),
            TrafficClass::Push,
            40,
        );

        let mut folded = Traffic::new(4, w);
        folded.absorb_shard(&a);
        folded.absorb_shard(&b);
        assert_eq!(folded.messages(), whole.messages());
        for n in 0..4u32 {
            for c in TrafficClass::ALL {
                assert_eq!(
                    folded.sent_bytes(NodeId(n), c),
                    whole.sent_bytes(NodeId(n), c)
                );
                assert_eq!(
                    folded.recv_bytes(NodeId(n), c),
                    whole.recv_bytes(NodeId(n), c)
                );
            }
        }
        let fp = folded.background_series().points();
        let wp = whole.background_series().points();
        assert_eq!(fp.len(), wp.len());
        for (f, w) in fp.iter().zip(&wp) {
            assert_eq!(f.count, w.count);
            assert_eq!(f.sum, w.sum);
        }
        assert_eq!(
            folded.total_sent(TrafficClass::Gossip),
            whole.total_sent(TrafficClass::Gossip)
        );
    }

    #[test]
    fn merged_stats_equal_unsharded_stats() {
        // Record the same observations into one accumulator and into
        // two "shards", then merge: every metric must agree exactly.
        let w = SimDuration::from_mins(1);
        let obs = [
            (1u64, NodeId(0), 120u64, 40u64, ServedBy::LocalOverlay),
            (2, NodeId(7), 900, 300, ServedBy::OriginServer),
            (3, NodeId(1), 200, 90, ServedBy::RemoteOverlay),
            (3, NodeId(4), 0, 0, ServedBy::OwnCache),
        ];
        let mut whole = QueryStats::new(w);
        let mut a = QueryStats::new(w);
        let mut b = QueryStats::new(w);
        for (i, (t, n, l, x, s)) in obs.into_iter().enumerate() {
            whole.on_submit();
            whole.on_resolved(SimTime::from_secs(t), n, l, x, s);
            let half = if i % 2 == 0 { &mut a } else { &mut b };
            half.on_submit();
            half.on_resolved(SimTime::from_secs(t), n, l, x, s);
        }
        let mut merged = a.clone();
        merged.merge_from(&b);
        assert_eq!(merged.submitted(), whole.submitted());
        assert_eq!(merged.resolved(), whole.resolved());
        assert_eq!(merged.hit_ratio(), whole.hit_ratio());
        assert_eq!(merged.mean_lookup_ms(), whole.mean_lookup_ms());
        assert_eq!(merged.mean_transfer_ms(), whole.mean_transfer_ms());
        assert_eq!(merged.remote_hits(), whole.remote_hits());
        assert_eq!(
            merged.cumulative_hit_series(),
            whole.cumulative_hit_series()
        );
        let mp = merged.hit_series().points();
        let wp = whole.hit_series().points();
        assert_eq!(mp.len(), wp.len());
        for (m, w) in mp.iter().zip(&wp) {
            assert_eq!(m.count, w.count);
            assert_eq!(m.sum, w.sum);
        }

        // Traffic merges likewise.
        let mut t_whole = Traffic::new(4, w);
        let mut t_a = Traffic::new(4, w);
        let mut t_b = Traffic::new(4, w);
        for (i, (from, to, class, bytes)) in [
            (NodeId(0), NodeId(1), TrafficClass::Gossip, 100u32),
            (NodeId(1), NodeId(2), TrafficClass::Push, 60),
            (NodeId(2), NodeId(3), TrafficClass::Transfer, 900),
        ]
        .into_iter()
        .enumerate()
        {
            t_whole.record(SimTime::from_secs(i as u64), from, to, class, bytes);
            let half = if i % 2 == 0 { &mut t_a } else { &mut t_b };
            half.record(SimTime::from_secs(i as u64), from, to, class, bytes);
        }
        t_a.merge_from(&t_b);
        assert_eq!(t_a.messages(), t_whole.messages());
        for n in 0..4u32 {
            for c in TrafficClass::ALL {
                assert_eq!(
                    t_a.sent_bytes(NodeId(n), c),
                    t_whole.sent_bytes(NodeId(n), c)
                );
                assert_eq!(
                    t_a.recv_bytes(NodeId(n), c),
                    t_whole.recv_bytes(NodeId(n), c)
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "bucket width")]
    fn zero_bucket_width_rejected() {
        let _ = Histogram::new(0, 5);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// fraction_le + fraction_gt partition the observations.
        #[test]
        fn histogram_fractions_partition(values in proptest::collection::vec(0u64..5000, 1..200), thr_buckets in 0u64..10) {
            let mut h = Histogram::new(150, 7);
            for v in &values {
                h.record(*v);
            }
            let thr = thr_buckets * 150;
            let le = h.fraction_le(thr);
            let gt = h.fraction_gt(thr);
            prop_assert!((le + gt - 1.0).abs() < 1e-9);
            prop_assert!((0.0..=1.0).contains(&le));
        }

        /// Histogram mean equals the arithmetic mean of inputs.
        #[test]
        fn histogram_mean_exact(values in proptest::collection::vec(0u64..10_000, 1..300)) {
            let mut h = Histogram::new(100, 20);
            for v in &values {
                h.record(*v);
            }
            let expect = values.iter().sum::<u64>() as f64 / values.len() as f64;
            prop_assert!((h.mean() - expect).abs() < 1e-6);
        }

        /// TimeSeries never loses records: counts sum to inputs.
        #[test]
        fn series_preserves_counts(records in proptest::collection::vec((0u64..100_000, -100.0f64..100.0), 0..200)) {
            let mut s = TimeSeries::new(SimDuration::from_secs(10));
            for (t, v) in &records {
                s.record(SimTime::from_ms(*t), *v);
            }
            let total: u64 = s.points().iter().map(|p| p.count).sum();
            prop_assert_eq!(total as usize, records.len());
        }
    }
}
