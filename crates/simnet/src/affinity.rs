//! CPU affinity and latency-aware shard→core placement.
//!
//! The sharded engine's barrier round is short (one lookahead window,
//! 60 ms of simulated time), so where the OS scheduler parks the
//! shard threads matters: two shards that exchange mail every round
//! want adjacent cores (shared cache, cheap cacheline handoff for the
//! mailbox slots), and a thread that migrates cores mid-run drags its
//! event queue's working set across caches. This module provides the
//! two halves of the `--pin` flag:
//!
//! * [`place_shards`] turns the topology's pairwise lookahead matrix
//!   ([`Topology::shard_lookahead_ms`](crate::topology::Topology::shard_lookahead_ms))
//!   into a shard→core map — the *smallest* pair lookahead marks the
//!   *chattiest* pair (they synchronize most often), so the map walks
//!   a greedy nearest-neighbour path through the matrix and lays it
//!   out on consecutive core ids;
//! * [`pin_current_thread`] applies one entry of that map via the raw
//!   `sched_setaffinity` syscall (the workspace deliberately has no
//!   libc dependency), degrading gracefully — an `Err` on foreign
//!   platforms or denied affinity, never a panic, and results are
//!   bit-identical either way because placement only moves threads,
//!   never events.

/// Number of logical cores the process may run on (1 if unknown).
pub fn available_cores() -> usize {
    std::thread::available_parallelism().map_or(1, |c| c.get())
}

/// Pin the calling thread to logical CPU `core`.
///
/// Implemented as a raw `sched_setaffinity(0, …)` syscall on Linux
/// (x86-64 and aarch64); on any other target it returns an error
/// without side effects. Callers treat failure as advisory: the
/// engine logs nothing, keeps the thread unpinned and produces
/// bit-identical results, because pinning is a scheduling hint with
/// no semantic content.
pub fn pin_current_thread(core: usize) -> Result<(), PinError> {
    let mut mask = [0u64; 16]; // up to 1024 CPUs
    if core >= mask.len() * 64 {
        return Err(PinError::NoSuchCore(core));
    }
    mask[core / 64] = 1u64 << (core % 64);
    match sched_setaffinity_raw(&mask) {
        0 => Ok(()),
        errno => Err(PinError::Syscall(errno)),
    }
}

/// Why a [`pin_current_thread`] call could not take effect.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PinError {
    /// The requested core index exceeds the supported mask width.
    NoSuchCore(usize),
    /// The kernel rejected the call (negated errno: e.g. `-22`
    /// EINVAL for a core the process may not use, `-1` EPERM), or
    /// the platform has no affinity syscall at all (`0` is never
    /// reported here).
    Syscall(i64),
    /// Compiled for a target without `sched_setaffinity`.
    Unsupported,
}

impl std::fmt::Display for PinError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PinError::NoSuchCore(c) => write!(f, "core {c} beyond the affinity mask"),
            PinError::Syscall(e) => write!(f, "sched_setaffinity failed (errno {})", -e),
            PinError::Unsupported => write!(f, "thread pinning unsupported on this target"),
        }
    }
}

#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
fn sched_setaffinity_raw(mask: &[u64]) -> i64 {
    const SYS_SCHED_SETAFFINITY: i64 = 203;
    let ret: i64;
    // SAFETY: sched_setaffinity reads `len` bytes from `mask` and has
    // no other memory effects; pid 0 targets the calling thread.
    unsafe {
        std::arch::asm!(
            "syscall",
            inlateout("rax") SYS_SCHED_SETAFFINITY => ret,
            in("rdi") 0usize,
            in("rsi") std::mem::size_of_val(mask),
            in("rdx") mask.as_ptr(),
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack, readonly)
        );
    }
    ret
}

#[cfg(all(target_os = "linux", target_arch = "aarch64"))]
fn sched_setaffinity_raw(mask: &[u64]) -> i64 {
    const SYS_SCHED_SETAFFINITY: i64 = 122;
    let ret: i64;
    // SAFETY: as above; aarch64 passes the syscall number in x8 and
    // returns in x0.
    unsafe {
        std::arch::asm!(
            "svc 0",
            in("x8") SYS_SCHED_SETAFFINITY,
            inlateout("x0") 0usize => ret,
            in("x1") std::mem::size_of_val(mask),
            in("x2") mask.as_ptr(),
            options(nostack, readonly)
        );
    }
    ret
}

#[cfg(not(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
)))]
fn sched_setaffinity_raw(_mask: &[u64]) -> i64 {
    // Report ENOSYS; pin_current_thread surfaces it as Syscall(-38),
    // which callers already treat as "leave the thread unpinned".
    -38
}

/// Lay `k` shards out on `cores` logical CPUs so that the chattiest
/// shard pairs land on *adjacent* core ids.
///
/// `pair_ms` is the row-major `k × k` pairwise lookahead matrix (the
/// diagonal is ignored): a **small** entry means the two shards are
/// close in the simulated network, exchange mail in short epochs and
/// synchronize often — so the heuristic treats the matrix as a cost
/// function and builds a greedy nearest-neighbour path: start at the
/// globally cheapest pair, then repeatedly extend whichever end of
/// the path has the cheapest unplaced neighbour. Position `i` along
/// the path is assigned core `i % cores`, which both honours
/// adjacency when cores suffice and degrades to round-robin sharing
/// when `cores < k` (the 1-CPU container maps everything to core 0).
///
/// Entirely deterministic: ties break towards the smaller shard
/// index, so the map is a pure function of the topology — results
/// never depend on it anyway, but a stable map keeps wall-clock runs
/// comparable.
pub fn place_shards(pair_ms: &[u64], k: usize, cores: usize) -> Vec<usize> {
    let cores = cores.max(1);
    assert!(pair_ms.len() >= k * k, "pair matrix must be k×k");
    if k <= 1 {
        return vec![0; k];
    }
    let at = |a: usize, b: usize| pair_ms[a * k + b];
    // Seed with the globally cheapest (chattiest) pair.
    let (mut best, mut seed) = (u64::MAX, (0usize, 1usize));
    for a in 0..k {
        for b in (a + 1)..k {
            let c = at(a, b).min(at(b, a));
            if c < best {
                best = c;
                seed = (a, b);
            }
        }
    }
    let mut path = std::collections::VecDeque::with_capacity(k);
    path.push_back(seed.0);
    path.push_back(seed.1);
    let mut placed = vec![false; k];
    placed[seed.0] = true;
    placed[seed.1] = true;
    while path.len() < k {
        let ends = [
            *path.front().expect("non-empty"),
            *path.back().expect("non-empty"),
        ];
        // The cheapest unplaced extension at either end; ties prefer
        // the tail (index 1) and the smaller shard id.
        let mut pick: Option<(u64, usize, usize)> = None; // (cost, end, shard)
        for (e, &end) in ends.iter().enumerate() {
            for (s, _) in placed.iter().enumerate().filter(|(_, &p)| !p) {
                let c = at(end, s).min(at(s, end));
                let cand = (c, 1 - e, s); // prefer tail on cost ties
                if pick.is_none_or(|p| cand < p) {
                    pick = Some(cand);
                }
            }
        }
        let (_, flipped_end, s) = pick.expect("an unplaced shard exists");
        placed[s] = true;
        if flipped_end == 1 {
            path.push_front(s);
        } else {
            path.push_back(s);
        }
    }
    let mut map = vec![0usize; k];
    for (pos, shard) in path.iter().enumerate() {
        map[*shard] = pos % cores;
    }
    map
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A 4-shard matrix where (1,2) is the chattiest pair, 0 hangs
    /// off 1, and 3 is far from everyone.
    fn matrix() -> Vec<u64> {
        let inf = u64::MAX;
        vec![
            inf, 70, 200, 300, //
            70, inf, 60, 300, //
            200, 60, inf, 250, //
            300, 300, 250, inf,
        ]
    }

    #[test]
    fn chattiest_pairs_land_adjacent() {
        let map = place_shards(&matrix(), 4, 8);
        // The greedy path is 0–1–2–3, so core distance mirrors
        // lookahead closeness.
        let d = |a: usize, b: usize| map[a].abs_diff(map[b]);
        assert_eq!(d(1, 2), 1, "chattiest pair must be adjacent: {map:?}");
        assert_eq!(d(0, 1), 1, "second-chattiest pair adjacent: {map:?}");
        assert!(d(0, 3) >= 2, "distant shards spread out: {map:?}");
        let mut cores = map.clone();
        cores.sort_unstable();
        cores.dedup();
        assert_eq!(cores.len(), 4, "4 shards on 8 cores use 4 cores");
    }

    #[test]
    fn placement_degrades_round_robin_when_cores_are_short() {
        let map = place_shards(&matrix(), 4, 2);
        assert!(map.iter().all(|&c| c < 2), "only cores 0..2: {map:?}");
        assert_eq!(place_shards(&matrix(), 4, 1), vec![0; 4]);
        // cores = 0 is normalized to 1.
        assert_eq!(place_shards(&matrix(), 4, 0), vec![0; 4]);
    }

    #[test]
    fn placement_is_deterministic_and_total() {
        let a = place_shards(&matrix(), 4, 4);
        let b = place_shards(&matrix(), 4, 4);
        assert_eq!(a, b);
        assert_eq!(place_shards(&[], 0, 4), Vec::<usize>::new());
        assert_eq!(place_shards(&[u64::MAX], 1, 4), vec![0]);
        // A uniform matrix still yields a valid 1:1 map.
        let uni = vec![60u64; 9];
        let mut m = place_shards(&uni, 3, 3);
        m.sort_unstable();
        assert_eq!(m, vec![0, 1, 2]);
    }

    #[test]
    fn pinning_degrades_gracefully() {
        assert_eq!(
            pin_current_thread(100_000),
            Err(PinError::NoSuchCore(100_000))
        );
        // Pinning to the current host's core 0 either succeeds (Linux)
        // or reports a syscall error — never panics. Immediately pin
        // back to the full mask so the test thread is not left
        // restricted.
        match pin_current_thread(0) {
            Ok(()) => {
                let mut all = [u64::MAX; 16];
                all[0] = u64::MAX;
                let _ = sched_setaffinity_raw(&all);
            }
            Err(PinError::Syscall(e)) => assert!(e < 0, "errno must be negative, got {e}"),
            Err(e) => panic!("unexpected {e}"),
        }
    }
}
