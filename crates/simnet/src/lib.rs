//! # simnet — discrete-event network simulator
//!
//! The substrate underneath the Flower-CDN reproduction. The paper
//! (El Dick, Pacitti, Kemme; EDBT 2009) evaluates Flower-CDN with the
//! PeerSim event-driven simulator over a BRITE-generated Internet
//! topology; this crate is the from-scratch equivalent:
//!
//! * a millisecond-resolution simulated clock ([`SimTime`]) and a
//!   deterministic event queue ([`event::EventQueue`]);
//! * an Internet-like underlay topology with per-link latencies in a
//!   configurable range (default 10–500 ms, matching the paper) and
//!   landmark-based network localities ([`topology`]);
//! * a generic protocol engine ([`engine::Engine`]) that delivers
//!   messages with link latency, runs timers, accounts traffic by
//!   class, injects churn — and shards the simulation by locality for
//!   parallel execution;
//! * measurement utilities ([`stats`]): per-class traffic accounting,
//!   fixed-width histograms (the paper's latency/distance
//!   distributions), windowed time series (the paper's
//!   metric-vs-time figures), and the paper's four query metrics
//!   (hit ratio, lookup latency, transfer distance, background
//!   traffic).
//!
//! ## Time, ordering and determinism
//!
//! Simulated time is a `u64` millisecond clock. Every scheduled event
//! carries an [`event::EventKey`] `(time, source stream, per-stream
//! sequence number)`: external injections number themselves from one
//! engine-wide counter (stream 0), and everything node `n` emits —
//! sends, timers, engine-generated bounces — is numbered by `n`'s own
//! emission counter (stream `n + 1`). Events execute in ascending key
//! order. Because the key never references *global* insertion order,
//! the order is a pure function of the configuration and seed — it
//! does not depend on how the simulation is partitioned or scheduled
//! onto threads.
//!
//! The *storage* behind that order is a pluggable backend
//! ([`event::EventQueueKind`], selected via
//! [`TopologyConfig::event_queue`]): a self-resizing **calendar
//! queue** (Brown, CACM 1988 — `O(1)` hold operations at steady
//! state; the default) or the reference `BinaryHeap`. Same-instant
//! ties break by the full `EventKey` under both backends — bucket
//! width, resize thresholds and every other calendar internal are
//! pure functions of the push/pop sequence — so the backend can only
//! change wall-clock speed, never results (pinned by the backend
//! parity proptests in [`event`] and the seed-42 stat pins in
//! `tests/shard_parity.rs`).
//!
//! Randomness follows the same discipline: there is no engine-global
//! RNG. Node `n` draws from a private `StdRng` stream seeded with
//! `hash(seed, n)` ([`engine::node_stream_seed`]), so one node's
//! draws never perturb another's.
//!
//! ## Sharded parallel execution
//!
//! [`Engine::with_shards`] partitions the nodes by network locality
//! into `K` shards ([`Topology::shard_map`]), each with its own event
//! queue, clock, RNG streams and statistics, running on its own
//! thread. Shards synchronize through a *conservative epoch barrier*:
//! the epoch length is the topology's **lookahead**
//! ([`Topology::cross_locality_lookahead`]), a guaranteed lower bound
//! on every cross-locality link latency, so a cross-shard message
//! emitted during an epoch is always due in a later epoch and can be
//! handed over at the barrier in between. Within an epoch shards share
//! no mutable state (liveness flags are replicated and driven by
//! broadcast churn events), so the parallel run is equivalent to the
//! sequential execution in global key order. Together with the
//! layout-independent keys and per-node RNG streams this makes runs
//! **bit-identical for every shard count, including `K = 1`** — the
//! single-shard path simply skips threads and barriers.
//!
//! Statistics are accumulated per shard and merged deterministically
//! at read time (integer counters, plus integer-valued `f64` window
//! sums for which IEEE addition is exact); see [`stats`].
//!
//! ## Example
//!
//! ```
//! use simnet::prelude::*;
//!
//! // A trivial protocol: every node forwards a token once.
//! #[derive(Clone, Debug)]
//! struct Token(u32);
//! impl Message for Token {
//!     fn wire_size(&self) -> u32 { 4 }
//!     fn class(&self) -> TrafficClass { TrafficClass::QueryControl }
//! }
//! struct Hop;
//! impl Node<Token> for Hop {
//!     fn on_event(&mut self, ctx: &mut Ctx<'_, Token>, ev: Event<Token>) {
//!         if let Event::Recv { msg: Token(n), .. } = ev {
//!             if n > 0 {
//!                 let next = NodeId((ctx.id().0 + 1) % ctx.num_nodes() as u32);
//!                 ctx.send(next, Token(n - 1));
//!             }
//!         }
//!     }
//! }
//!
//! let topo = Topology::generate(&TopologyConfig::small_test(), 42);
//! let nodes = (0..topo.num_nodes()).map(|_| Hop).collect();
//! let mut engine = Engine::new(topo, nodes, 7);
//! engine.schedule_in(SimDuration::ZERO, NodeId(0), Event::Recv {
//!     from: NodeId(0),
//!     msg: Token(5),
//! });
//! engine.run_until(SimTime::from_secs(10));
//! assert!(engine.now() <= SimTime::from_secs(10));
//! ```

pub mod affinity;
pub mod churn;
pub mod engine;
pub mod event;
pub mod fault;
pub mod stats;
pub mod sync;
pub mod time;
pub mod topology;

pub use affinity::{available_cores, pin_current_thread, place_shards, PinError};
pub use churn::{ChurnConfig, ChurnEvent, ChurnKind, ChurnScript};
pub use engine::{
    node_stream_seed, Action, Ctx, DeliveryMode, Engine, Event, Message, Node, QuerySink,
};
pub use event::{EventKey, EventQueueKind};
pub use fault::{FaultPlane, LinkLoss, Partition, RegionalFailure};
pub use stats::{
    Histogram, QueryStats, SeriesPoint, ShardTraffic, TimeSeries, Traffic, TrafficClass,
};
pub use sync::{MailboxGrid, SenseBarrier, SenseWaiter};
pub use time::{SimDuration, SimTime};
pub use topology::{Locality, LookaheadKind, NodeId, Topology, TopologyConfig};

/// Convenient glob-import of the types almost every consumer needs.
pub mod prelude {
    pub use crate::churn::{ChurnConfig, ChurnScript};
    pub use crate::engine::{Ctx, Engine, Event, Message, Node};
    pub use crate::event::EventQueueKind;
    pub use crate::fault::{FaultPlane, LinkLoss, Partition, RegionalFailure};
    pub use crate::stats::{Histogram, QueryStats, TimeSeries, Traffic, TrafficClass};
    pub use crate::time::{SimDuration, SimTime};
    pub use crate::topology::{Locality, LookaheadKind, NodeId, Topology, TopologyConfig};
}
