//! # simnet — discrete-event network simulator
//!
//! The substrate underneath the Flower-CDN reproduction. The paper
//! (El Dick, Pacitti, Kemme; EDBT 2009) evaluates Flower-CDN with the
//! PeerSim event-driven simulator over a BRITE-generated Internet
//! topology; this crate is the from-scratch equivalent:
//!
//! * a millisecond-resolution simulated clock ([`SimTime`]) and a
//!   deterministic event queue ([`event::EventQueue`]);
//! * an Internet-like underlay topology with per-link latencies in a
//!   configurable range (default 10–500 ms, matching the paper) and
//!   landmark-based network localities ([`topology`]);
//! * a generic protocol engine ([`engine::Engine`]) that delivers
//!   messages with link latency, runs timers, accounts traffic by
//!   class, and injects churn;
//! * measurement utilities ([`stats`]): per-class traffic accounting,
//!   fixed-width histograms (the paper's latency/distance
//!   distributions), windowed time series (the paper's
//!   metric-vs-time figures), and the paper's four query metrics
//!   (hit ratio, lookup latency, transfer distance, background
//!   traffic).
//!
//! The whole simulation is single-threaded and fully deterministic:
//! a run is a pure function of its configuration and RNG seed.
//!
//! ## Example
//!
//! ```
//! use simnet::prelude::*;
//!
//! // A trivial protocol: every node forwards a token once.
//! #[derive(Clone, Debug)]
//! struct Token(u32);
//! impl Message for Token {
//!     fn wire_size(&self) -> u32 { 4 }
//!     fn class(&self) -> TrafficClass { TrafficClass::QueryControl }
//! }
//! struct Hop;
//! impl Node<Token> for Hop {
//!     fn on_event(&mut self, ctx: &mut Ctx<'_, Token>, ev: Event<Token>) {
//!         if let Event::Recv { msg: Token(n), .. } = ev {
//!             if n > 0 {
//!                 let next = NodeId((ctx.id().0 + 1) % ctx.num_nodes() as u32);
//!                 ctx.send(next, Token(n - 1));
//!             }
//!         }
//!     }
//! }
//!
//! let topo = Topology::generate(&TopologyConfig::small_test(), 42);
//! let nodes = (0..topo.num_nodes()).map(|_| Hop).collect();
//! let mut engine = Engine::new(topo, nodes, 7);
//! engine.schedule_in(SimDuration::ZERO, NodeId(0), Event::Recv {
//!     from: NodeId(0),
//!     msg: Token(5),
//! });
//! engine.run_until(SimTime::from_secs(10));
//! assert!(engine.now() <= SimTime::from_secs(10));
//! ```

pub mod churn;
pub mod engine;
pub mod event;
pub mod stats;
pub mod time;
pub mod topology;

pub use churn::{ChurnConfig, ChurnEvent, ChurnKind, ChurnScript};
pub use engine::{Action, Ctx, Engine, Event, Message, Node};
pub use stats::{Histogram, QueryStats, SeriesPoint, TimeSeries, Traffic, TrafficClass};
pub use time::{SimDuration, SimTime};
pub use topology::{Locality, NodeId, Topology, TopologyConfig};

/// Convenient glob-import of the types almost every consumer needs.
pub mod prelude {
    pub use crate::churn::{ChurnConfig, ChurnScript};
    pub use crate::engine::{Ctx, Engine, Event, Message, Node};
    pub use crate::stats::{Histogram, QueryStats, TimeSeries, Traffic, TrafficClass};
    pub use crate::time::{SimDuration, SimTime};
    pub use crate::topology::{Locality, NodeId, Topology, TopologyConfig};
}
