//! Deterministic fault injection: scripted partitions, link loss and
//! correlated regional failures.
//!
//! A [`FaultPlane`] is the failure-side sibling of
//! [`ChurnScript`](crate::churn::ChurnScript): a static script,
//! compiled once and installed on an [`Engine`](crate::engine::Engine)
//! via [`Engine::set_fault_plane`](crate::engine::Engine::set_fault_plane),
//! that the delivery path consults while the simulation runs. Three
//! fault families:
//!
//! * **Partitions** ([`Partition`]) cut every wire message between two
//!   locality sets for a scheduled window, *silently* — no bounce is
//!   generated, unlike sends to dead nodes, because a partitioned
//!   network gives the sender no synchronous signal. The cut is
//!   evaluated at delivery time as a pure function of `(delivery
//!   time, sender locality, destination locality)`, so it is
//!   independent of the shard layout by construction.
//! * **Link loss** ([`LinkLoss`]) drops each wire send inside the
//!   active window with probability `p`. The coin is flipped **at
//!   send time from the emitter's own RNG stream**, which is the same
//!   stream on every shard layout — results stay bit-identical across
//!   `--shards 1/2/4`. When no loss window is active the emitter's
//!   stream is not consulted at all, so enabling an empty plane
//!   changes nothing.
//! * **Regional failures** ([`RegionalFailure`]) kill every node of a
//!   locality at one instant and revive them on a staggered schedule
//!   (node *i* of the locality's node list recovers at
//!   `recover_start + i · stagger`). They compile to the same
//!   broadcast churn events `ChurnScript` uses — no randomness, no
//!   layout dependence.
//!
//! The determinism contract, in one line: **every fault decision is a
//! pure function of the script, the topology and the emitter's
//! private RNG stream** — never of shard count, queue backend or
//! thread schedule.

use crate::time::{SimDuration, SimTime};
use crate::topology::Locality;

/// A scheduled network partition between two locality sets.
///
/// While `start ≤ now < heal`, every wire message with the sender in
/// one side and the destination in the other is silently dropped (in
/// both directions). Localities in neither side are unaffected.
#[derive(Clone, Debug)]
pub struct Partition {
    /// Instant the partition takes effect.
    pub start: SimTime,
    /// Instant the partition heals (exclusive — messages delivered at
    /// `heal` go through).
    pub heal: SimTime,
    /// One side of the cut.
    pub side_a: Vec<Locality>,
    /// The other side of the cut.
    pub side_b: Vec<Locality>,
}

/// A [`Partition`] compiled to locality bitmasks for the hot delivery
/// path.
#[derive(Clone, Copy, Debug)]
struct CompiledPartition {
    start: SimTime,
    heal: SimTime,
    mask_a: u128,
    mask_b: u128,
}

/// A probabilistic message-loss window.
#[derive(Clone, Copy, Debug)]
pub struct LinkLoss {
    /// Instant loss starts.
    pub start: SimTime,
    /// Instant loss ends (exclusive).
    pub end: SimTime,
    /// Per-message drop probability in `[0, 1]`.
    pub probability: f64,
    /// When true, only messages crossing a locality boundary are at
    /// risk — intra-locality (LAN) links stay lossless.
    pub cross_locality_only: bool,
}

/// A correlated regional failure: every node of `locality` dies at
/// `at`; node `i` of the locality's node list recovers at
/// `recover_start + i · stagger`.
#[derive(Clone, Copy, Debug)]
pub struct RegionalFailure {
    /// Instant the whole locality goes down.
    pub at: SimTime,
    /// The locality that fails.
    pub locality: Locality,
    /// Instant the first node comes back.
    pub recover_start: SimTime,
    /// Gap between consecutive node recoveries.
    pub stagger: SimDuration,
}

/// A compiled, installable fault script. See the module docs for the
/// three fault families and the determinism contract.
#[derive(Clone, Debug, Default)]
pub struct FaultPlane {
    partitions: Vec<CompiledPartition>,
    loss: Vec<LinkLoss>,
    regional: Vec<RegionalFailure>,
}

fn locality_mask(side: &[Locality]) -> u128 {
    let mut mask = 0u128;
    for l in side {
        assert!(
            l.idx() < 128,
            "FaultPlane supports locality indices < 128, got {}",
            l.idx()
        );
        mask |= 1u128 << l.idx();
    }
    mask
}

impl FaultPlane {
    /// An empty plane (injects nothing).
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a scheduled [`Partition`]. Panics on an empty side,
    /// overlapping sides or a non-positive window — a silently inert
    /// partition would invalidate whatever experiment scripted it.
    pub fn partition(mut self, p: Partition) -> Self {
        assert!(
            !p.side_a.is_empty() && !p.side_b.is_empty(),
            "partition sides must be non-empty"
        );
        assert!(
            p.start < p.heal,
            "partition must heal after it starts ({:?} !< {:?})",
            p.start,
            p.heal
        );
        let mask_a = locality_mask(&p.side_a);
        let mask_b = locality_mask(&p.side_b);
        assert!(
            mask_a & mask_b == 0,
            "partition sides overlap (a locality cannot be on both sides)"
        );
        self.partitions.push(CompiledPartition {
            start: p.start,
            heal: p.heal,
            mask_a,
            mask_b,
        });
        self
    }

    /// Add a [`LinkLoss`] window. Panics on a probability outside
    /// `[0, 1]` or a non-positive window.
    pub fn link_loss(mut self, l: LinkLoss) -> Self {
        assert!(
            (0.0..=1.0).contains(&l.probability),
            "loss probability must be in [0, 1], got {}",
            l.probability
        );
        assert!(
            l.start < l.end,
            "loss window must end after it starts ({:?} !< {:?})",
            l.start,
            l.end
        );
        self.loss.push(l);
        self
    }

    /// Add a [`RegionalFailure`]. Panics when recovery is scheduled
    /// before the failure.
    pub fn regional_failure(mut self, r: RegionalFailure) -> Self {
        assert!(
            r.recover_start > r.at,
            "regional recovery must start after the failure ({:?} !> {:?})",
            r.recover_start,
            r.at
        );
        self.regional.push(r);
        self
    }

    /// True when the plane scripts nothing at all.
    pub fn is_empty(&self) -> bool {
        self.partitions.is_empty() && self.loss.is_empty() && self.regional.is_empty()
    }

    /// Does an active partition cut a message from locality `a` to
    /// locality `b` at instant `at`? Pure function of its arguments.
    #[inline]
    pub fn cuts(&self, at: SimTime, a: Locality, b: Locality) -> bool {
        if self.partitions.is_empty() {
            return false;
        }
        let (ma, mb) = (1u128 << a.idx().min(127), 1u128 << b.idx().min(127));
        self.partitions.iter().any(|p| {
            at >= p.start
                && at < p.heal
                && ((p.mask_a & ma != 0 && p.mask_b & mb != 0)
                    || (p.mask_b & ma != 0 && p.mask_a & mb != 0))
        })
    }

    /// The drop probability a send at `at` is exposed to, or `None`
    /// when no loss window applies — in which case the caller must
    /// not consume any randomness. `crosses_locality` is whether the
    /// message leaves the sender's locality.
    #[inline]
    pub fn loss_probability(&self, at: SimTime, crosses_locality: bool) -> Option<f64> {
        self.loss
            .iter()
            .find(|l| at >= l.start && at < l.end && (crosses_locality || !l.cross_locality_only))
            .map(|l| l.probability)
    }

    /// The scripted regional failures, for the engine to compile into
    /// broadcast churn events at install time.
    pub fn regional_failures(&self) -> &[RegionalFailure] {
        &self.regional
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn partition_cuts_both_directions_within_window() {
        let plane = FaultPlane::new().partition(Partition {
            start: t(10),
            heal: t(20),
            side_a: vec![Locality(0)],
            side_b: vec![Locality(1), Locality(2)],
        });
        assert!(plane.cuts(t(10), Locality(0), Locality(1)));
        assert!(plane.cuts(t(15), Locality(2), Locality(0)));
        // Outside the window, before and at heal.
        assert!(!plane.cuts(t(9), Locality(0), Locality(1)));
        assert!(!plane.cuts(t(20), Locality(0), Locality(1)));
        // Uninvolved locality and same-side traffic pass.
        assert!(!plane.cuts(t(15), Locality(3), Locality(0)));
        assert!(!plane.cuts(t(15), Locality(1), Locality(2)));
        assert!(!plane.cuts(t(15), Locality(0), Locality(0)));
    }

    #[test]
    #[should_panic(expected = "sides overlap")]
    fn overlapping_partition_sides_panic() {
        let _ = FaultPlane::new().partition(Partition {
            start: t(0),
            heal: t(1),
            side_a: vec![Locality(0), Locality(1)],
            side_b: vec![Locality(1)],
        });
    }

    #[test]
    #[should_panic(expected = "must heal after")]
    fn inverted_partition_window_panics() {
        let _ = FaultPlane::new().partition(Partition {
            start: t(5),
            heal: t(5),
            side_a: vec![Locality(0)],
            side_b: vec![Locality(1)],
        });
    }

    #[test]
    fn loss_window_scopes_and_bounds() {
        let plane = FaultPlane::new().link_loss(LinkLoss {
            start: t(1),
            end: t(2),
            probability: 0.25,
            cross_locality_only: true,
        });
        assert_eq!(plane.loss_probability(t(1), true), Some(0.25));
        // Intra-locality links are exempt under cross_locality_only.
        assert_eq!(plane.loss_probability(t(1), false), None);
        assert_eq!(plane.loss_probability(t(0), true), None);
        assert_eq!(plane.loss_probability(t(2), true), None);
    }

    #[test]
    #[should_panic(expected = "probability must be in [0, 1]")]
    fn out_of_range_loss_probability_panics() {
        let _ = FaultPlane::new().link_loss(LinkLoss {
            start: t(0),
            end: t(1),
            probability: 1.5,
            cross_locality_only: false,
        });
    }

    #[test]
    #[should_panic(expected = "recovery must start after")]
    fn regional_recovery_before_failure_panics() {
        let _ = FaultPlane::new().regional_failure(RegionalFailure {
            at: t(10),
            locality: Locality(0),
            recover_start: t(10),
            stagger: SimDuration::from_secs(1),
        });
    }

    #[test]
    fn empty_plane_is_empty() {
        assert!(FaultPlane::new().is_empty());
    }
}
