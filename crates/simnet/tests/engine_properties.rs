//! Property-style tests of the simulation engine: determinism under
//! arbitrary scheduling, causality of message delivery, and churn
//! semantics.

use proptest::prelude::*;
use simnet::prelude::*;
use simnet::Event;

/// A protocol that relays tokens a fixed number of times to a
/// pseudo-random next hop, recording a digest of everything it saw.
#[derive(Clone, Debug)]
struct Token {
    ttl: u8,
    tag: u64,
}
impl Message for Token {
    fn wire_size(&self) -> u32 {
        9
    }
    fn class(&self) -> TrafficClass {
        TrafficClass::QueryControl
    }
}

#[derive(Default)]
struct Relay {
    digest: u64,
    seen: u64,
}

impl Node<Token> for Relay {
    fn on_event(&mut self, ctx: &mut Ctx<'_, Token>, ev: Event<Token>) {
        match ev {
            Event::Recv { msg, .. } => {
                self.seen += 1;
                self.digest = self
                    .digest
                    .wrapping_mul(0x100000001B3)
                    .wrapping_add(msg.tag ^ ctx.now().as_ms());
                if msg.ttl > 0 {
                    let next =
                        NodeId(((msg.tag ^ ctx.id().0 as u64) % ctx.num_nodes() as u64) as u32);
                    ctx.send(
                        next,
                        Token {
                            ttl: msg.ttl - 1,
                            tag: msg.tag.wrapping_mul(31),
                        },
                    );
                }
            }
            Event::Timer { tag, .. } => {
                self.digest ^= tag;
            }
            _ => {}
        }
    }
}

fn run_schedule(injections: &[(u64, u32, u8, u64)], seed: u64) -> (u64, u64, u64) {
    let topo = Topology::generate(&TopologyConfig::small_test(), seed);
    let n = topo.num_nodes();
    let nodes = (0..n).map(|_| Relay::default()).collect();
    let mut engine = simnet::Engine::new(topo, nodes, seed);
    for (at, node, ttl, tag) in injections {
        engine.schedule_at(
            SimTime::from_ms(*at),
            NodeId(*node % n as u32),
            Event::Recv {
                from: NodeId(0),
                msg: Token {
                    ttl: *ttl % 16,
                    tag: *tag,
                },
            },
        );
    }
    engine.run_until(SimTime::from_hours(1));
    let digest = (0..n as u32)
        .map(|i| engine.node(NodeId(i)).digest)
        .fold(0u64, |a, d| a.wrapping_mul(1099511628211).wrapping_add(d));
    let seen: u64 = (0..n as u32).map(|i| engine.node(NodeId(i)).seen).sum();
    (digest, seen, engine.events_processed())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Two runs of the same schedule are bit-identical, event for
    /// event.
    #[test]
    fn engine_is_deterministic(
        injections in proptest::collection::vec((0u64..60_000, any::<u32>(), any::<u8>(), any::<u64>()), 1..30),
        seed in any::<u64>(),
    ) {
        let a = run_schedule(&injections, seed);
        let b = run_schedule(&injections, seed);
        prop_assert_eq!(a, b);
    }

    /// Every injected token with ttl t produces exactly t+1 receptions
    /// (no message is lost or duplicated in a fully-up network).
    #[test]
    fn message_conservation(
        injections in proptest::collection::vec((0u64..60_000, any::<u32>(), any::<u8>(), any::<u64>()), 1..30),
        seed in any::<u64>(),
    ) {
        let (_, seen, _) = run_schedule(&injections, seed);
        let expected: u64 = injections.iter().map(|(_, _, ttl, _)| (*ttl % 16) as u64 + 1).sum();
        prop_assert_eq!(seen, expected);
    }
}

#[test]
fn messages_to_down_nodes_bounce_exactly_once() {
    let topo = Topology::generate(&TopologyConfig::small_test(), 5);
    let n = topo.num_nodes();

    #[derive(Default)]
    struct Probe {
        bounces: u32,
        received: u32,
    }
    impl Node<Token> for Probe {
        fn on_event(&mut self, _ctx: &mut Ctx<'_, Token>, ev: Event<Token>) {
            match ev {
                Event::Undeliverable { .. } => self.bounces += 1,
                Event::Recv { .. } => self.received += 1,
                _ => {}
            }
        }
    }

    let nodes = (0..n).map(|_| Probe::default()).collect();
    let mut engine = simnet::Engine::new(topo, nodes, 9);
    engine.schedule_down(SimTime::ZERO, NodeId(1));
    // Node 0 "receives" a token that it would relay... instead drive a
    // direct send by injecting at a helper that relays to 1. Simpler:
    // schedule a Recv at node 0 from node 1 — Probe does not reply, so
    // craft the send manually through a relay-like shim:
    struct Shim;
    impl Node<Token> for Shim {
        fn on_event(&mut self, ctx: &mut Ctx<'_, Token>, ev: Event<Token>) {
            if matches!(ev, Event::Timer { .. }) {
                ctx.send(NodeId(1), Token { ttl: 0, tag: 7 });
            }
        }
    }
    // Rebuild with node 0 as the shim.
    let topo = Topology::generate(&TopologyConfig::small_test(), 5);
    let mut nodes: Vec<Box<dyn Node<Token>>> = Vec::new();
    let _ = &mut nodes; // (trait objects not used; use a two-variant enum instead)

    enum P {
        Shim(Shim),
        Probe(Probe),
    }
    impl Node<Token> for P {
        fn on_event(&mut self, ctx: &mut Ctx<'_, Token>, ev: Event<Token>) {
            match self {
                P::Shim(s) => s.on_event(ctx, ev),
                P::Probe(p) => p.on_event(ctx, ev),
            }
        }
    }
    let nodes: Vec<P> = (0..topo.num_nodes())
        .map(|i| {
            if i == 0 {
                P::Shim(Shim)
            } else {
                P::Probe(Probe::default())
            }
        })
        .collect();
    let mut engine = simnet::Engine::new(topo, nodes, 9);
    engine.schedule_down(SimTime::ZERO, NodeId(1));
    engine.schedule_at(
        SimTime::from_ms(1),
        NodeId(0),
        Event::Timer { kind: 1, tag: 0 },
    );
    engine.run_until(SimTime::from_secs(10));
    // The shim gets no bounce notification (it is node 0 = Shim which
    // ignores them), but the engine must not deliver to node 1:
    if let P::Probe(p) = engine.node(NodeId(1)) {
        assert_eq!(p.received, 0, "down node must not receive");
    } else {
        panic!("node 1 should be a probe");
    }
}

#[test]
fn churn_script_round_trips_through_engine() {
    let topo = Topology::generate(&TopologyConfig::small_test(), 11);
    let n = topo.num_nodes();
    let nodes = (0..n).map(|_| Relay::default()).collect();
    let mut engine = simnet::Engine::new(topo, nodes, 11);
    let affected: Vec<NodeId> = (0..10).map(NodeId).collect();
    let cfg = ChurnConfig {
        start: SimTime::from_secs(1),
        end: SimTime::from_mins(30),
        mean_session: simnet::SimDuration::from_mins(5),
        mean_downtime: simnet::SimDuration::from_mins(1),
        permanent: false,
    };
    let script = ChurnScript::generate(&cfg, &affected, 11);
    script.install(&mut engine);
    engine.run_until(SimTime::from_mins(31));
    // After the script ends, each node's final state matches the
    // parity of its events.
    for &node in &affected {
        let downs = script.events().iter().filter(|e| e.node == node).count();
        let last_kind = script
            .events()
            .iter()
            .rfind(|e| e.node == node)
            .map(|e| e.kind);
        match last_kind {
            Some(simnet::ChurnKind::Down) => assert!(!engine.is_up(node), "{node} should be down"),
            Some(simnet::ChurnKind::Up) => assert!(engine.is_up(node), "{node} should be up"),
            None => assert!(engine.is_up(node)),
        }
        let _ = downs;
    }
}
