//! The tentpole guarantee of the sharded engine: the same seed
//! produces bit-identical results for every shard count, including
//! `--shards 1`. The protocol below deliberately exercises everything
//! that could diverge under parallel execution: per-node randomness,
//! timers, cross-locality traffic, churn bounces, query metrics and
//! gauges.

use rand::Rng;
use simnet::stats::ServedBy;
use simnet::{
    ChurnConfig, ChurnScript, Ctx, Engine, Event, EventQueueKind, Message, Node, NodeId,
    SimDuration, SimTime, Topology, TopologyConfig, TrafficClass,
};

#[derive(Clone, Debug)]
enum Msg {
    Probe { hops: u8 },
    Reply,
}

impl Message for Msg {
    fn wire_size(&self) -> u32 {
        match self {
            Msg::Probe { .. } => 24,
            Msg::Reply => 16,
        }
    }
    fn class(&self) -> TrafficClass {
        match self {
            Msg::Probe { .. } => TrafficClass::QueryControl,
            Msg::Reply => TrafficClass::Transfer,
        }
    }
}

/// Relays probes to random peers (biased cross-locality), answers with
/// replies, records query metrics, keeps a state digest.
#[derive(Default)]
struct Chatter {
    digest: u64,
    replies: u32,
    bounces: u32,
}

impl Chatter {
    fn mix(&mut self, x: u64) {
        self.digest = self
            .digest
            .wrapping_mul(0x100_0000_01B3)
            .wrapping_add(x ^ 0x9E37_79B9);
    }
}

impl Node<Msg> for Chatter {
    fn on_event(&mut self, ctx: &mut Ctx<'_, Msg>, ev: Event<Msg>) {
        match ev {
            Event::Recv {
                from,
                msg: Msg::Probe { hops },
            } => {
                self.mix(hops as u64 ^ ctx.now().as_ms());
                ctx.query_stats().on_submit();
                if hops == 0 {
                    let me = ctx.id();
                    let now = ctx.now();
                    let lat = ctx.latency_ms(me, from);
                    let served = if ctx.locality(me) == ctx.locality(from) {
                        ServedBy::LocalOverlay
                    } else {
                        ServedBy::RemoteOverlay
                    };
                    ctx.query_stats().on_resolved(now, me, lat, lat, served);
                    ctx.send(from, Msg::Reply);
                    return;
                }
                // Random next hop from this node's private stream.
                let n = ctx.num_nodes() as u32;
                let next = NodeId(ctx.rng().gen_range(0..n));
                ctx.send(next, Msg::Probe { hops: hops - 1 });
                // Random jittered timer.
                let delay = SimDuration::from_ms(ctx.rng().gen_range(1..500u64));
                ctx.set_timer(delay, 1, hops as u64);
            }
            Event::Recv {
                msg: Msg::Reply, ..
            } => {
                self.replies += 1;
                ctx.gauge("replies", 1.0);
            }
            Event::Timer { tag, .. } => self.mix(tag),
            Event::Undeliverable { to, .. } => {
                self.bounces += 1;
                self.mix(to.0 as u64);
            }
            Event::NodeUp => self.mix(0xDEAD),
        }
    }
}

/// A full run at the given shard count, reduced to a comparable
/// fingerprint of everything observable.
fn run(shards: usize, seed: u64) -> (u64, u64, Vec<u64>, Vec<u64>, u64, String) {
    run_q(shards, seed, EventQueueKind::default())
}

/// As [`run`], on an explicit event-queue backend.
#[allow(clippy::type_complexity)]
fn run_q(
    shards: usize,
    seed: u64,
    queue: EventQueueKind,
) -> (u64, u64, Vec<u64>, Vec<u64>, u64, String) {
    let topo = Topology::generate(
        &TopologyConfig {
            nodes: 160,
            localities: 4,
            inter_locality_floor_ms: 60,
            event_queue: queue,
            ..Default::default()
        },
        seed,
    );
    let n = topo.num_nodes();
    let nodes = (0..n).map(|_| Chatter::default()).collect();
    let mut e = Engine::with_shards(topo, nodes, seed, SimDuration::from_secs(10), shards);

    // Inject probes at staggered times from many origins.
    for i in 0..60u32 {
        e.schedule_at(
            SimTime::from_ms(i as u64 * 37),
            NodeId(i % n as u32),
            Event::Recv {
                from: NodeId((i * 13 + 1) % n as u32),
                msg: Msg::Probe {
                    hops: (i % 7) as u8,
                },
            },
        );
    }
    // Session churn over a quarter of the population.
    let affected: Vec<NodeId> = (0..n as u32 / 4).map(NodeId).collect();
    let script = ChurnScript::generate(
        &ChurnConfig {
            start: SimTime::from_secs(2),
            end: SimTime::from_secs(50),
            mean_session: SimDuration::from_secs(8),
            mean_downtime: SimDuration::from_secs(2),
            permanent: false,
        },
        &affected,
        seed,
    );
    script.install(&mut e);

    e.run_until(SimTime::from_secs(60));

    let digests: Vec<u64> = e.topology().node_ids().map(|i| e.node(i).digest).collect();
    let per_node_traffic: Vec<u64> = e
        .topology()
        .node_ids()
        .flat_map(|i| {
            TrafficClass::ALL
                .iter()
                .map(move |c| (i, *c))
                .collect::<Vec<_>>()
        })
        .map(|(i, c)| e.traffic().sent_bytes(i, c) + e.traffic().recv_bytes(i, c))
        .collect();
    let q = e.query_stats();
    let qfp = format!(
        "{}/{} hit={:.12} lookup={:.6} transfer={:.6} cum_last={:?} replies_gauge={:?}",
        q.submitted(),
        q.resolved(),
        q.hit_ratio(),
        q.mean_lookup_ms(),
        q.mean_transfer_ms(),
        q.cumulative_hit_series().last().copied(),
        e.gauges().get("replies").map(|s| {
            s.points()
                .iter()
                .map(|p| (p.count, p.sum as u64))
                .collect::<Vec<_>>()
        }),
    );
    (
        e.events_processed(),
        e.traffic().messages(),
        digests,
        per_node_traffic,
        q.resolved(),
        qfp,
    )
}

#[test]
fn same_seed_identical_across_shard_counts() {
    let reference = run(1, 42);
    assert!(reference.0 > 500, "the workload should generate real load");
    assert!(reference.4 > 0, "some queries must resolve");
    for shards in [2, 3, 4] {
        let sharded = run(shards, 42);
        assert_eq!(
            sharded, reference,
            "shards={shards} diverged from the single-shard run"
        );
    }
}

#[test]
fn different_seeds_still_differ() {
    // Guard against the fingerprint being insensitive.
    assert_ne!(run(2, 1).2, run(2, 2).2, "seed must matter");
}

#[test]
fn same_seed_identical_across_queue_backends() {
    // The event-storage backend is an execution detail exactly like
    // the shard count: full fingerprint equality, sharded and not.
    for shards in [1, 3] {
        assert_eq!(
            run_q(shards, 42, EventQueueKind::Calendar),
            run_q(shards, 42, EventQueueKind::Heap),
            "shards={shards}: queue backends diverged"
        );
    }
}

#[test]
fn churn_bounces_are_shard_independent() {
    let bounce_counts = |shards: usize| -> Vec<u32> {
        let topo = Topology::generate(
            &TopologyConfig {
                nodes: 80,
                localities: 4,
                inter_locality_floor_ms: 40,
                ..Default::default()
            },
            7,
        );
        let n = topo.num_nodes();
        let nodes = (0..n).map(|_| Chatter::default()).collect();
        let mut e = Engine::with_shards(topo, nodes, 7, SimDuration::from_secs(10), shards);
        // Take down half the nodes, then probe into the rubble.
        for i in 0..n as u32 / 2 {
            e.schedule_down(SimTime::ZERO, NodeId(i * 2));
        }
        for i in 0..40u32 {
            e.schedule_at(
                SimTime::from_ms(5 + i as u64 * 11),
                NodeId(i % (n as u32)),
                Event::Recv {
                    from: NodeId((i + 3) % (n as u32)),
                    msg: Msg::Probe { hops: 3 },
                },
            );
        }
        e.run_until(SimTime::from_secs(30));
        e.topology().node_ids().map(|i| e.node(i).bounces).collect()
    };
    let reference = bounce_counts(1);
    assert!(
        reference.iter().sum::<u32>() > 0,
        "the scenario should produce bounces"
    );
    assert_eq!(bounce_counts(2), reference);
    assert_eq!(bounce_counts(4), reference);
}
