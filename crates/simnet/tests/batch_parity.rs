//! Delivery-mode parity: the batched per-(node, epoch) dispatch path
//! (`DeliveryMode::Batched`, the default) must be bit-identical to the
//! one-event-at-a-time reference path (`DeliveryMode::Single`) — for
//! every shard count, under churn, and at scale. Batching is a
//! wall-clock optimisation only; any observable divergence is a bug
//! in the batch-break conditions (destination change, churn event,
//! epoch bound).

use proptest::prelude::*;
use rand::Rng;
use simnet::stats::ServedBy;
use simnet::{
    ChurnConfig, ChurnScript, Ctx, DeliveryMode, Engine, Event, Message, Node, NodeId, SimDuration,
    SimTime, Topology, TopologyConfig, TrafficClass,
};

#[derive(Clone, Debug)]
enum Msg {
    Probe { hops: u8 },
    Reply,
}

impl Message for Msg {
    fn wire_size(&self) -> u32 {
        match self {
            Msg::Probe { .. } => 24,
            Msg::Reply => 16,
        }
    }
    fn class(&self) -> TrafficClass {
        match self {
            Msg::Probe { .. } => TrafficClass::QueryControl,
            Msg::Reply => TrafficClass::Transfer,
        }
    }
}

/// Relays probes to random peers, answers with replies, records query
/// metrics and a state digest — everything the batched path could
/// plausibly reorder or drop.
#[derive(Default)]
struct Chatter {
    digest: u64,
    replies: u32,
}

impl Chatter {
    fn mix(&mut self, x: u64) {
        self.digest = self
            .digest
            .wrapping_mul(0x100_0000_01B3)
            .wrapping_add(x ^ 0x9E37_79B9);
    }
}

impl Node<Msg> for Chatter {
    fn on_event(&mut self, ctx: &mut Ctx<'_, Msg>, ev: Event<Msg>) {
        match ev {
            Event::Recv {
                from,
                msg: Msg::Probe { hops },
            } => {
                self.mix(hops as u64 ^ ctx.now().as_ms());
                ctx.query_stats().on_submit();
                if hops == 0 {
                    let me = ctx.id();
                    let now = ctx.now();
                    let lat = ctx.latency_ms(me, from);
                    let served = if ctx.locality(me) == ctx.locality(from) {
                        ServedBy::LocalOverlay
                    } else {
                        ServedBy::RemoteOverlay
                    };
                    ctx.query_stats().on_resolved(now, me, lat, lat, served);
                    ctx.send(from, Msg::Reply);
                    return;
                }
                let n = ctx.num_nodes() as u32;
                let next = NodeId(ctx.rng().gen_range(0..n));
                ctx.send(next, Msg::Probe { hops: hops - 1 });
                let delay = SimDuration::from_ms(ctx.rng().gen_range(1..400u64));
                ctx.set_timer(delay, 1, hops as u64);
            }
            Event::Recv {
                msg: Msg::Reply, ..
            } => {
                self.replies += 1;
                ctx.gauge("replies", 1.0);
            }
            Event::Timer { tag, .. } => self.mix(tag),
            Event::Undeliverable { to, .. } => self.mix(to.0 as u64),
            Event::NodeUp => self.mix(0xDEAD),
        }
    }
}

/// Everything observable about a run, reduced to a comparable value.
type Fingerprint = (u64, u64, Vec<u64>, u64, String);

fn fingerprint<F>(e: &Engine<Msg, Chatter>, digest: F) -> Fingerprint
where
    F: Fn(&Chatter) -> u64,
{
    let digests: Vec<u64> = e.topology().node_ids().map(|i| digest(e.node(i))).collect();
    let traffic: u64 = e
        .topology()
        .node_ids()
        .flat_map(|i| TrafficClass::ALL.iter().map(move |c| (i, *c)))
        .map(|(i, c)| e.traffic().sent_bytes(i, c) + e.traffic().recv_bytes(i, c))
        .fold(0u64, |a, b| a.wrapping_mul(1099511628211).wrapping_add(b));
    let q = e.query_stats();
    let qfp = format!(
        "{}/{} hit={:.12} lookup={:.6} cum={:?}",
        q.submitted(),
        q.resolved(),
        q.hit_ratio(),
        q.mean_lookup_ms(),
        q.cumulative_hit_series().last().copied(),
    );
    (
        e.events_processed(),
        e.traffic().messages(),
        digests,
        traffic,
        qfp,
    )
}

/// A full run with churn at the given shard count and delivery mode.
fn run(shards: usize, seed: u64, mode: DeliveryMode, injections: &[(u64, u32, u8)]) -> Fingerprint {
    let topo = Topology::generate(
        &TopologyConfig {
            nodes: 120,
            localities: 4,
            inter_locality_floor_ms: 50,
            ..Default::default()
        },
        seed,
    );
    let n = topo.num_nodes();
    let nodes = (0..n).map(|_| Chatter::default()).collect();
    let mut e = Engine::with_shards(topo, nodes, seed, SimDuration::from_secs(10), shards);
    e.set_delivery_mode(mode);
    for (at, origin, hops) in injections {
        e.schedule_at(
            SimTime::from_ms(*at),
            NodeId(origin % n as u32),
            Event::Recv {
                from: NodeId((origin.wrapping_mul(13) + 1) % n as u32),
                msg: Msg::Probe { hops: hops % 6 },
            },
        );
    }
    // Churn breaks delivery batches mid-epoch; a quarter of the
    // population flaps so batches end on Up/Down events too.
    let affected: Vec<NodeId> = (0..n as u32 / 4).map(NodeId).collect();
    let script = ChurnScript::generate(
        &ChurnConfig {
            start: SimTime::from_secs(2),
            end: SimTime::from_secs(40),
            mean_session: SimDuration::from_secs(6),
            mean_downtime: SimDuration::from_secs(2),
            permanent: false,
        },
        &affected,
        seed,
    );
    script.install(&mut e);
    e.run_until(SimTime::from_secs(45));
    fingerprint(&e, |c| c.digest.wrapping_add(c.replies as u64))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Batched delivery is bit-identical to one-at-a-time dispatch
    /// for every shard count, on arbitrary injection schedules.
    #[test]
    fn batched_dispatch_matches_single_for_every_shard_count(
        injections in proptest::collection::vec((0u64..30_000, any::<u32>(), any::<u8>()), 1..24),
        seed in any::<u64>(),
    ) {
        let reference = run(1, seed, DeliveryMode::Single, &injections);
        for shards in [1usize, 2, 3] {
            prop_assert_eq!(
                run(shards, seed, DeliveryMode::Batched, &injections),
                reference.clone(),
                "shards={} batched diverged from the single-dispatch reference",
                shards
            );
            if shards > 1 {
                prop_assert_eq!(
                    run(shards, seed, DeliveryMode::Single, &injections),
                    reference.clone(),
                    "shards={} single diverged across shard counts",
                    shards
                );
            }
        }
    }
}

/// Seed-42 pin at 50 000 nodes: the batched and single paths agree at
/// scale, and the shared fingerprint matches the recorded constants —
/// any engine change that shifts event order at scale trips this
/// before it reaches a BENCH baseline.
#[test]
#[ignore = "runs multi-thousand-node simulations; use --release -- --ignored"]
fn seed_42_stat_pin_at_50k_nodes() {
    let run_50k = |mode: DeliveryMode, shards: usize| -> Fingerprint {
        let topo = Topology::generate(
            &TopologyConfig {
                nodes: 50_000,
                localities: 8,
                inter_locality_floor_ms: 50,
                ..Default::default()
            },
            42,
        );
        let n = topo.num_nodes();
        let nodes = (0..n).map(|_| Chatter::default()).collect();
        let mut e = Engine::with_shards(topo, nodes, 42, SimDuration::from_secs(10), shards);
        e.set_delivery_mode(mode);
        for i in 0..4000u32 {
            e.schedule_at(
                SimTime::from_ms(i as u64 * 7),
                NodeId(i.wrapping_mul(97) % n as u32),
                Event::Recv {
                    from: NodeId(i.wrapping_mul(13).wrapping_add(1) % n as u32),
                    msg: Msg::Probe {
                        hops: (i % 7) as u8,
                    },
                },
            );
        }
        e.run_until(SimTime::from_secs(60));
        fingerprint(&e, |c| c.digest.wrapping_add(c.replies as u64))
    };
    let batched = run_50k(DeliveryMode::Batched, 2);
    for (mode, shards) in [
        (DeliveryMode::Single, 2),
        (DeliveryMode::Batched, 1),
        (DeliveryMode::Batched, 4),
    ] {
        assert_eq!(
            run_50k(mode, shards),
            batched,
            "{mode:?}/{shards} shards diverged at 50k nodes"
        );
    }
    // The pinned seed-42 statistics. If an intentional engine change
    // moves these, re-pin and say so in the commit message.
    assert_eq!(
        (batched.0, batched.1, batched.4.as_str()),
        (
            31988,
            15994,
            "15994/4000 hit=1.000000000000 lookup=169.922500 cum=Some((t+29304ms, 1.0))"
        ),
        "pinned seed-42 stats moved"
    );
}
