//! Shared fixtures for the Criterion benchmarks.
//!
//! The macro benches (`benches/tables.rs`, `benches/figures.rs`) run
//! miniature versions of the paper's experiments — small topology,
//! minutes-long horizon — so Criterion can iterate them; the
//! statistics they measure are the *costs* of the protocols, while
//! the `flower-experiments` binary regenerates the paper's *values*
//! at full scale.

use flower_core::system::SystemConfig;
use simnet::SimDuration;
use squirrel::SquirrelConfig;

/// A bench-sized Flower-CDN configuration: 300 nodes, two active
/// websites, two simulated minutes.
pub fn bench_flower_config(seed: u64) -> SystemConfig {
    let mut cfg = SystemConfig::small_test();
    cfg.seed = seed;
    cfg.workload.duration_ms = 2 * 60 * 1000;
    cfg.window = SimDuration::from_secs(30);
    cfg
}

/// The matching Squirrel configuration.
pub fn bench_squirrel_config(seed: u64) -> SquirrelConfig {
    let mut cfg = SquirrelConfig::small_test();
    cfg.seed = seed;
    cfg.workload.duration_ms = 2 * 60 * 1000;
    cfg.window = SimDuration::from_secs(30);
    cfg
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_configs_run() {
        let (_, r) = flower_core::system::FlowerSystem::run(&bench_flower_config(1));
        assert!(r.resolved > 0);
        let (_, s) = squirrel::SquirrelSystem::run(&bench_squirrel_config(1));
        assert!(s.resolved > 0);
    }
}
