//! Macro benchmarks, one group per table of the paper: bench-sized
//! versions of the Table 2 sweeps. Each measurement runs a complete
//! miniature simulation with the swept parameter, so the relative
//! costs (e.g. gossip frequency vs wall time) are visible in the
//! Criterion report, while the full-scale values live in
//! `EXPERIMENTS.md`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use flower_bench::bench_flower_config;
use flower_core::system::FlowerSystem;
use simnet::SimDuration;

/// Table 2(a): sweep Lgossip.
fn bench_table2a(c: &mut Criterion) {
    let mut g = c.benchmark_group("table2a_lgossip");
    g.sample_size(10);
    for l in [4usize, 8] {
        g.bench_with_input(BenchmarkId::from_parameter(l), &l, |b, &l| {
            b.iter(|| {
                let mut cfg = bench_flower_config(1);
                cfg.flower.l_gossip = l;
                let (_, r) = FlowerSystem::run(&cfg);
                r.hit_ratio
            })
        });
    }
    g.finish();
}

/// Table 2(b): sweep Tgossip.
fn bench_table2b(c: &mut Criterion) {
    let mut g = c.benchmark_group("table2b_tgossip");
    g.sample_size(10);
    for secs in [5u64, 30] {
        g.bench_with_input(BenchmarkId::from_parameter(secs), &secs, |b, &secs| {
            b.iter(|| {
                let mut cfg = bench_flower_config(1);
                cfg.flower.t_gossip = SimDuration::from_secs(secs);
                let (_, r) = FlowerSystem::run(&cfg);
                r.hit_ratio
            })
        });
    }
    g.finish();
}

/// Table 2(c): sweep Vgossip.
fn bench_table2c(c: &mut Criterion) {
    let mut g = c.benchmark_group("table2c_vgossip");
    g.sample_size(10);
    for v in [10usize, 30] {
        g.bench_with_input(BenchmarkId::from_parameter(v), &v, |b, &v| {
            b.iter(|| {
                let mut cfg = bench_flower_config(1);
                cfg.flower.v_gossip = v;
                let (_, r) = FlowerSystem::run(&cfg);
                r.hit_ratio
            })
        });
    }
    g.finish();
}

/// §6.2 text: push-threshold sweep.
fn bench_push_threshold(c: &mut Criterion) {
    let mut g = c.benchmark_group("push_threshold");
    g.sample_size(10);
    for th in [0.1f64, 0.7] {
        g.bench_with_input(BenchmarkId::from_parameter(th), &th, |b, &th| {
            b.iter(|| {
                let mut cfg = bench_flower_config(1);
                cfg.flower.push_threshold = th;
                let (_, r) = FlowerSystem::run(&cfg);
                r.hit_ratio
            })
        });
    }
    g.finish();
}

criterion_group!(
    tables,
    bench_table2a,
    bench_table2b,
    bench_table2c,
    bench_push_threshold
);
criterion_main!(tables);
