//! Micro-benchmarks of the hot paths: Bloom summaries, gossip view
//! operations, Chord lookup machinery, D-ring key handling, Zipf
//! sampling, and the event queue.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use bloom::{BloomFilter, ContentSummary, MaintainedSummary, ObjectId};
use chord::{stable_ring, ChordConfig, ChordId, PeerRef};
use flower_core::id::KeyScheme;
use flower_core::policy::DringPolicy;
use gossip::{View, ViewEntry};
use simnet::{EventQueueKind, NodeId, SimTime};
use workload::Zipf;

fn bench_bloom(c: &mut Criterion) {
    let mut g = c.benchmark_group("bloom");
    g.bench_function("insert_500", |b| {
        b.iter(|| {
            let mut f = BloomFilter::with_rate(500, 8);
            for k in 0..500u64 {
                f.insert(black_box(k));
            }
            f
        })
    });
    let mut filter = BloomFilter::with_rate(500, 8);
    for k in 0..500u64 {
        filter.insert(k);
    }
    g.bench_function("contains", |b| {
        let mut k = 0u64;
        b.iter(|| {
            k = k.wrapping_add(0x9E37_79B9);
            black_box(filter.contains(black_box(k)))
        })
    });
    g.bench_function("summary_rebuild_500", |b| {
        let objs: Vec<ObjectId> = (0..500).map(ObjectId).collect();
        b.iter(|| ContentSummary::from_objects(500, black_box(&objs)))
    });
    // The maintain-vs-rebuild comparison behind the PR 5 hot-path
    // change: what a gossip exchange costs per summary under each
    // discipline. `snapshot` replaces `summary_rebuild_500` on the
    // gossip/push path; `maintain_churn` is the steady-state
    // insert+remove bookkeeping that pays for it.
    g.bench_function("summary_snapshot_500_cached", |b| {
        // Steady state: content unchanged since the last exchange —
        // the snapshot is an Arc bump.
        let mut m = MaintainedSummary::empty(500);
        for k in 0..500u64 {
            m.insert(ObjectId(k));
        }
        let _ = m.snapshot();
        b.iter(|| black_box(m.snapshot()))
    });
    g.bench_function("summary_snapshot_500_dirty", |b| {
        // Post-mutation: one churn cycle plus the O(words) rebuild of
        // the cached projection.
        let mut m = MaintainedSummary::empty(500);
        for k in 0..500u64 {
            m.insert(ObjectId(k));
        }
        let mut k = 0u64;
        b.iter(|| {
            m.remove(ObjectId(k % 500));
            m.insert(ObjectId(k % 500));
            k += 1;
            black_box(m.snapshot())
        })
    });
    g.bench_function("summary_maintain_churn", |b| {
        let mut m = MaintainedSummary::empty(500);
        for k in 0..500u64 {
            m.insert(ObjectId(k));
        }
        let mut k = 0u64;
        b.iter(|| {
            m.remove(ObjectId(k % 500));
            m.insert(ObjectId(k % 500));
            k += 1;
        })
    });
    g.finish();
}

fn bench_gossip_view(c: &mut Criterion) {
    let mut g = c.benchmark_group("gossip_view");
    let mut rng = StdRng::seed_from_u64(1);
    let make_view = || {
        let mut v: View<u32, u8> = View::new(50);
        for p in 0..50u32 {
            v.insert_fresh(p, 0);
        }
        v
    };
    let view = make_view();
    g.bench_function("select_subset_10_of_50", |b| {
        b.iter(|| view.select_subset(&mut rng, 10))
    });
    g.bench_function("merge_10_into_50", |b| {
        b.iter_batched(
            make_view,
            |mut v| {
                let subset: Vec<ViewEntry<u32, u8>> = (100..110u32)
                    .map(|p| ViewEntry {
                        peer: p,
                        age: 1,
                        data: 0,
                    })
                    .collect();
                v.merge(999, ViewEntry::fresh(50, 0), subset);
                v
            },
            criterion::BatchSize::SmallInput,
        )
    });
    // The gossip-exchange view merge as the engine actually runs it:
    // `Vgossip = 50` views whose entries carry `Option<ContentSummary>`
    // payloads (Table 1 sizing), folding an `Lgossip = 10` subset plus
    // the partner entry — the other profiled hot path next to the
    // summary rebuilds.
    g.bench_function("merge_summaries_10_into_50", |b| {
        let summary = |seed: u64| {
            let mut s = ContentSummary::empty(200);
            for k in 0..20u64 {
                s.insert(ObjectId(seed * 31 + k));
            }
            Some(s)
        };
        let make_view = || {
            let mut v: View<u32, Option<ContentSummary>> = View::new(50);
            for p in 0..50u32 {
                v.insert_fresh(p, summary(p as u64));
            }
            v
        };
        let subset: Vec<ViewEntry<u32, Option<ContentSummary>>> = (40..50u32)
            .map(|p| ViewEntry {
                peer: p,
                age: 0,
                data: summary(p as u64 + 100),
            })
            .collect();
        let partner = ViewEntry::fresh(77, summary(999));
        b.iter_batched(
            make_view,
            |mut v| {
                v.merge(999, partner.clone(), subset.clone());
                v
            },
            criterion::BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_chord(c: &mut Criterion) {
    let mut g = c.benchmark_group("chord");
    let members: Vec<PeerRef> = (0..600u64)
        .map(|i| PeerRef {
            id: ChordId(chord::hash64(i)),
            node: NodeId(i as u32),
        })
        .collect();
    let states = stable_ring(&members, &ChordConfig::default());
    g.bench_function("stable_ring_600", |b| {
        b.iter(|| stable_ring(black_box(&members), &ChordConfig::default()))
    });
    g.bench_function("local_lookup", |b| {
        let mut k = 0u64;
        b.iter(|| {
            k = k.wrapping_add(0x9E37_79B9_7F4A_7C15);
            black_box(states[0].local_lookup(ChordId(k)))
        })
    });
    g.finish();
}

fn bench_dring(c: &mut Criterion) {
    let mut g = c.benchmark_group("dring");
    let scheme = KeyScheme::new(8, 0);
    g.bench_function("key_encode", |b| {
        b.iter(|| {
            scheme.key(
                black_box(workload::WebsiteId(42)),
                black_box(simnet::Locality(3)),
            )
        })
    });
    // Conditional local lookup over a realistic D-ring neighbourhood.
    let members: Vec<PeerRef> = (0..100u16)
        .flat_map(|ws| {
            (0..6u16).map(move |l| PeerRef {
                id: scheme.key(workload::WebsiteId(ws), simnet::Locality(l)),
                node: NodeId((ws * 6 + l) as u32),
            })
        })
        .collect();
    let states = stable_ring(&members, &ChordConfig::default());
    let policy = DringPolicy::new(scheme);
    let key = scheme.key(workload::WebsiteId(50), simnet::Locality(5));
    g.bench_function("conditional_local_lookup", |b| {
        b.iter(|| policy.conditional_local_lookup(black_box(&states[0]), black_box(key)))
    });
    g.finish();
}

fn bench_workload(c: &mut Criterion) {
    let mut g = c.benchmark_group("workload");
    let z = Zipf::new(500, 0.8);
    let mut rng = StdRng::seed_from_u64(2);
    g.bench_function("zipf_sample_500", |b| b.iter(|| z.sample(&mut rng)));
    g.finish();
}

fn bench_event_queue(c: &mut Criterion) {
    let mut g = c.benchmark_group("simnet");
    for kind in [EventQueueKind::Calendar, EventQueueKind::Heap] {
        // Bulk fill-then-drain.
        g.bench_function(format!("event_queue_{kind}_push_pop_1k"), |b| {
            b.iter(|| {
                let mut q = simnet::event::EventQueue::with_kind(kind);
                for i in 0..1000u64 {
                    let key = simnet::EventKey {
                        at: SimTime::from_ms((i * 7919) % 1000),
                        src: i % 7,
                        seq: i,
                    };
                    q.push(key, i);
                }
                let mut n = 0;
                while q.pop().is_some() {
                    n += 1;
                }
                n
            })
        });
        // Steady-state hold pattern (the engine's actual profile): a
        // deep standing population with pop-one/push-one cycles — the
        // regime where the calendar's O(1) beats the heap's O(log n).
        g.bench_function(format!("event_queue_{kind}_hold_16k"), |b| {
            let mut q = simnet::event::EventQueue::with_kind(kind);
            let mut seq = 0u64;
            for _ in 0..16_384u64 {
                let key = simnet::EventKey {
                    at: SimTime::from_ms((seq * 211) % 10_000),
                    src: seq % 31,
                    seq,
                };
                q.push(key, seq);
                seq += 1;
            }
            b.iter(|| {
                let (k, _) = q.pop().expect("standing population");
                q.push(
                    simnet::EventKey {
                        at: k.at + simnet::SimDuration::from_ms((seq * 97) % 500),
                        src: seq % 31,
                        seq,
                    },
                    seq,
                );
                seq += 1;
                k
            })
        });
    }
    g.finish();
}

fn bench_shard_exchange(c: &mut Criterion) {
    use simnet::MailboxGrid;
    use std::sync::Mutex;
    let mut g = c.benchmark_group("sync");
    // One epoch-boundary cross-shard exchange at the engine's real
    // shape: K shards, a staged batch of a few events per (sender,
    // receiver) pair, every round. The retired design appended each
    // batch into the receiver's `Mutex<Vec>` inbox and drained it
    // under the lock; the mailbox grid swaps whole buffers through
    // per-pair double-buffered slots. Measured single-threaded, so
    // the delta below is pure per-item handoff cost (lock + copy vs
    // swap) — under real contention the lock path only gets worse.
    const K: usize = 4;
    const BATCH: u64 = 8;
    g.bench_function("exchange_mutex_inbox", |b| {
        let inboxes: Vec<Mutex<Vec<(u64, u64)>>> = (0..K).map(|_| Mutex::new(Vec::new())).collect();
        let mut outbox: Vec<(u64, u64)> = Vec::new();
        b.iter(|| {
            for sender in 0..K {
                for (recv, inbox) in inboxes.iter().enumerate() {
                    if recv == sender {
                        continue;
                    }
                    for i in 0..BATCH {
                        outbox.push((sender as u64, i));
                    }
                    inbox.lock().unwrap().extend(outbox.drain(..));
                }
            }
            let mut n = 0;
            for inbox in &inboxes {
                n += inbox.lock().unwrap().drain(..).count();
            }
            n
        })
    });
    g.bench_function("exchange_mailbox_grid", |b| {
        let grid: MailboxGrid<(u64, u64)> = MailboxGrid::new(K);
        let mut outboxes: Vec<Vec<Vec<(u64, u64)>>> = vec![vec![Vec::new(); K]; K];
        let mut round = 0usize;
        b.iter(|| {
            let parity = round & 1;
            round += 1;
            for (sender, outbox) in outboxes.iter_mut().enumerate() {
                for (recv, batch) in outbox.iter_mut().enumerate() {
                    if recv == sender {
                        continue;
                    }
                    for i in 0..BATCH {
                        batch.push((sender as u64, i));
                    }
                }
                // SAFETY: single-threaded bench — trivially the unique
                // sender, and parity alternates per round as the
                // engine does it.
                unsafe { grid.publish(parity, sender, outbox) };
            }
            let mut n = 0;
            for recv in 0..K {
                // SAFETY: unique receiver, after all publishes.
                unsafe { grid.drain(parity, recv, |_| n += 1) };
            }
            n
        })
    });
    g.finish();
}

fn bench_dispatch_batched_vs_single(c: &mut Criterion) {
    use simnet::{Ctx, DeliveryMode, Engine, Event, Node, Topology, TopologyConfig};

    // A hot-spot protocol: every peer pings node 0, node 0 answers —
    // so consecutive queue heads share a destination and the batched
    // path can amortise the node lookup and liveness check per batch
    // instead of per event. `Single` is the retired one-at-a-time
    // reference the parity suite compares against.
    #[derive(Clone, Debug)]
    struct Ping(u8);
    impl simnet::Message for Ping {
        fn wire_size(&self) -> u32 {
            16
        }
        fn class(&self) -> simnet::TrafficClass {
            simnet::TrafficClass::QueryControl
        }
    }
    #[derive(Default)]
    struct Hot {
        seen: u64,
    }
    impl Node<Ping> for Hot {
        fn on_event(&mut self, ctx: &mut Ctx<'_, Ping>, ev: Event<Ping>) {
            if let Event::Recv {
                from,
                msg: Ping(ttl),
            } = ev
            {
                self.seen += 1;
                if ttl > 0 {
                    let dst = if ctx.id() == NodeId(0) {
                        from
                    } else {
                        NodeId(0)
                    };
                    ctx.send(dst, Ping(ttl - 1));
                }
            }
        }
    }
    let build = |mode: DeliveryMode| {
        let topo = Topology::generate(
            &TopologyConfig {
                nodes: 256,
                localities: 2,
                ..Default::default()
            },
            7,
        );
        let n = topo.num_nodes();
        let nodes = (0..n).map(|_| Hot::default()).collect();
        let mut e: Engine<Ping, Hot> = Engine::new(topo, nodes, 7);
        e.set_delivery_mode(mode);
        for i in 1..n as u32 {
            e.schedule_at(
                SimTime::from_ms(1 + (i as u64 % 40)),
                NodeId(i),
                Event::Recv {
                    from: NodeId(i),
                    msg: Ping(40),
                },
            );
        }
        e
    };
    let mut g = c.benchmark_group("dispatch_batched_vs_single");
    for (name, mode) in [
        ("batched", DeliveryMode::Batched),
        ("single", DeliveryMode::Single),
    ] {
        g.bench_function(name, |b| {
            b.iter_batched(
                || build(mode),
                |mut e| {
                    e.run_until(SimTime::from_secs(60));
                    e.events_processed()
                },
                criterion::BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

fn bench_stats_streaming_vs_log_replay(c: &mut Criterion) {
    use simnet::stats::ServedBy;
    use simnet::{QueryStats, SimDuration};

    // The streaming cumulative-hit accumulator versus the design it
    // replaced: an unbounded per-resolution log replayed into the
    // curve at report time. Both record N resolutions and then
    // produce the cumulative hit series; the streaming side is O(N)
    // time and O(buckets) memory, the log is O(N) memory and pays a
    // sort at replay.
    const N: u64 = 20_000;
    let window = SimDuration::from_mins(30);
    let resolution = |i: u64| {
        let at = SimTime::from_ms((i.wrapping_mul(7919)) % window.as_ms());
        let served = if i.is_multiple_of(3) {
            ServedBy::OriginServer
        } else {
            ServedBy::LocalOverlay
        };
        (at, served)
    };
    let mut g = c.benchmark_group("stats_streaming_vs_log_replay");
    g.bench_function("streaming", |b| {
        b.iter(|| {
            let mut q = QueryStats::new(window);
            for i in 0..N {
                let (at, served) = resolution(i);
                q.on_submit();
                q.on_resolved(at, NodeId(0), 10, 20, served);
            }
            black_box(q.cumulative_hit_series())
        })
    });
    g.bench_function("log_replay", |b| {
        b.iter(|| {
            let mut log: Vec<(SimTime, bool)> = Vec::new();
            for i in 0..N {
                let (at, served) = resolution(i);
                log.push((at, served != ServedBy::OriginServer));
            }
            log.sort_by_key(|(at, _)| *at);
            let mut hits = 0u64;
            let mut total = 0u64;
            let out: Vec<(SimTime, f64)> = log
                .iter()
                .map(|(at, hit)| {
                    hits += u64::from(*hit);
                    total += 1;
                    (*at, hits as f64 / total as f64)
                })
                .collect();
            black_box(out)
        })
    });
    g.finish();
}

criterion_group!(
    micro,
    bench_bloom,
    bench_gossip_view,
    bench_chord,
    bench_dring,
    bench_workload,
    bench_event_queue,
    bench_shard_exchange,
    bench_dispatch_batched_vs_single,
    bench_stats_streaming_vs_log_replay
);
criterion_main!(micro);
