//! Macro benchmarks, one group per figure of the paper: bench-sized
//! Flower-CDN and Squirrel runs (Figures 6–8 compare the two on the
//! same trace; Figure 5 is a Flower-only run), plus a churn run for
//! the §5 recovery machinery.

use criterion::{criterion_group, criterion_main, Criterion};
use flower_bench::{bench_flower_config, bench_squirrel_config};
use flower_core::system::FlowerSystem;
use simnet::{ChurnConfig, ChurnScript, SimDuration, SimTime};
use squirrel::SquirrelSystem;

/// Figure 5: hit ratio & background traffic over time (Flower only).
fn bench_fig5_flower_run(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig5");
    g.sample_size(10);
    g.bench_function("flower_2min_300nodes", |b| {
        b.iter(|| {
            let (_, r) = FlowerSystem::run(&bench_flower_config(5));
            (r.hit_ratio, r.background_bps)
        })
    });
    g.finish();
}

/// Figures 6–8: the comparison pair on one trace.
fn bench_fig678_pair(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig678");
    g.sample_size(10);
    g.bench_function("flower_vs_squirrel_pair", |b| {
        b.iter(|| {
            let (_, f) = FlowerSystem::run(&bench_flower_config(6));
            let (_, s) = SquirrelSystem::run(&bench_squirrel_config(6));
            (f.mean_lookup_ms, s.mean_lookup_ms)
        })
    });
    g.bench_function("squirrel_only", |b| {
        b.iter(|| {
            let (_, s) = SquirrelSystem::run(&bench_squirrel_config(7));
            s.mean_lookup_ms
        })
    });
    g.finish();
}

/// The churn extension: recovery machinery under session churn.
fn bench_churn_run(c: &mut Criterion) {
    let mut g = c.benchmark_group("churn");
    g.sample_size(10);
    g.bench_function("flower_with_churn", |b| {
        b.iter(|| {
            let cfg = bench_flower_config(8);
            let mut sys = FlowerSystem::build(&cfg);
            let horizon = SimTime::from_ms(cfg.workload.duration_ms);
            let affected: Vec<_> = sys
                .community(workload::WebsiteId(0), simnet::Locality(0))
                .iter()
                .take(10)
                .copied()
                .collect();
            let churn = ChurnConfig {
                start: SimTime::from_secs(20),
                end: horizon,
                mean_session: SimDuration::from_secs(30),
                mean_downtime: SimDuration::from_secs(10),
                permanent: false,
            };
            sys.apply_churn(&ChurnScript::generate(&churn, &affected, 8));
            sys.run_until(horizon);
            sys.report().hit_ratio
        })
    });
    g.finish();
}

criterion_group!(
    figures,
    bench_fig5_flower_run,
    bench_fig678_pair,
    bench_churn_run
);
criterion_main!(figures);
