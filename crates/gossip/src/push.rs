//! One-way push of content-list deltas (paper §4.2.1, Algorithm 5).
//!
//! A content peer monitors the changes (object insertions and
//! deletions) to its content list; whenever the percentage of
//! unreported changes reaches a threshold, it extracts a `∆list` and
//! pushes it to its directory peer. The same mechanism governs when a
//! directory peer refreshes the directory summaries it sends to its
//! D-ring neighbours (§4.2.1, delayed propagation per Fan et al.).

/// Whether an object was added to or removed from the list.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ChangeKind {
    /// The object is newly held.
    Added,
    /// The object was dropped.
    Removed,
}

/// The accumulated, not-yet-pushed changes of a content list: the
/// paper's `∆list`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChangeLog<T> {
    /// Objects added since the last push.
    pub added: Vec<T>,
    /// Objects removed since the last push.
    pub removed: Vec<T>,
}

impl<T> Default for ChangeLog<T> {
    fn default() -> Self {
        ChangeLog {
            added: Vec::new(),
            removed: Vec::new(),
        }
    }
}

impl<T: PartialEq> ChangeLog<T> {
    /// An empty log.
    pub fn new() -> Self {
        ChangeLog {
            added: Vec::new(),
            removed: Vec::new(),
        }
    }

    /// Record one change. An add followed by a remove of the same item
    /// (or vice versa) cancels out, leaving no pending change for it.
    pub fn record(&mut self, item: T, kind: ChangeKind) {
        match kind {
            ChangeKind::Added => {
                if let Some(i) = self.removed.iter().position(|x| *x == item) {
                    self.removed.swap_remove(i);
                } else if !self.added.contains(&item) {
                    self.added.push(item);
                }
            }
            ChangeKind::Removed => {
                if let Some(i) = self.added.iter().position(|x| *x == item) {
                    self.added.swap_remove(i);
                } else if !self.removed.contains(&item) {
                    self.removed.push(item);
                }
            }
        }
    }

    /// `count_changes()` of Algorithm 5.
    pub fn count(&self) -> usize {
        self.added.len() + self.removed.len()
    }

    /// True if nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.count() == 0
    }

    /// `extract_changes()` of Algorithm 5: take the ∆list, leaving the
    /// log empty.
    pub fn extract(&mut self) -> ChangeLog<T> {
        std::mem::take(self)
    }
}

impl<T> ChangeLog<T> {
    /// Modelled wire size: each change ships one object id (8 bytes)
    /// plus a one-byte op code.
    pub fn wire_size(&self) -> u32 {
        ((self.added.len() + self.removed.len()) * 9) as u32
    }
}

/// The push-threshold policy of Algorithm 5: push when pending changes
/// reach `threshold` as a fraction of the current list size.
#[derive(Clone, Copy, Debug)]
pub struct PushPolicy {
    threshold: f64,
}

impl PushPolicy {
    /// A policy pushing when `pending / list_len >= threshold`.
    /// Table 1 explores thresholds 0.1, 0.5 and 0.7.
    pub fn new(threshold: f64) -> Self {
        assert!(
            threshold > 0.0,
            "a zero threshold would push on every change"
        );
        PushPolicy { threshold }
    }

    /// The configured threshold.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// Decide whether to push given `pending` unreported changes and a
    /// content list of `list_len` objects. An empty list with pending
    /// changes always pushes (the ratio is unbounded).
    pub fn should_push(&self, pending: usize, list_len: usize) -> bool {
        if pending == 0 {
            return false;
        }
        if list_len == 0 {
            return true;
        }
        pending as f64 / list_len as f64 >= self.threshold
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_extract() {
        let mut log = ChangeLog::new();
        log.record(1u32, ChangeKind::Added);
        log.record(2, ChangeKind::Added);
        log.record(3, ChangeKind::Removed);
        assert_eq!(log.count(), 3);
        let delta = log.extract();
        assert_eq!(delta.added, vec![1, 2]);
        assert_eq!(delta.removed, vec![3]);
        assert!(log.is_empty());
    }

    #[test]
    fn add_remove_cancels() {
        let mut log = ChangeLog::new();
        log.record(7u32, ChangeKind::Added);
        log.record(7, ChangeKind::Removed);
        assert!(log.is_empty());
        log.record(8, ChangeKind::Removed);
        log.record(8, ChangeKind::Added);
        assert!(log.is_empty());
    }

    #[test]
    fn duplicate_changes_collapse() {
        let mut log = ChangeLog::new();
        log.record(1u32, ChangeKind::Added);
        log.record(1, ChangeKind::Added);
        assert_eq!(log.count(), 1);
    }

    #[test]
    fn wire_size_model() {
        let mut log = ChangeLog::new();
        log.record(1u32, ChangeKind::Added);
        log.record(2, ChangeKind::Removed);
        assert_eq!(log.wire_size(), 18);
    }

    #[test]
    fn policy_thresholds() {
        let p = PushPolicy::new(0.1);
        assert!(!p.should_push(0, 100));
        assert!(!p.should_push(9, 100));
        assert!(p.should_push(10, 100));
        assert!(p.should_push(1, 0), "first object on empty list pushes");
        let strict = PushPolicy::new(0.7);
        assert!(!strict.should_push(69, 100));
        assert!(strict.should_push(70, 100));
    }

    #[test]
    #[should_panic(expected = "zero threshold")]
    fn zero_threshold_rejected() {
        let _ = PushPolicy::new(0.0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// After any sequence of changes, no item appears in both the
        /// added and removed sets, and no set has duplicates.
        #[test]
        fn changelog_consistency(ops in proptest::collection::vec((0u8..20, any::<bool>()), 0..100)) {
            let mut log = ChangeLog::new();
            for (item, add) in ops {
                log.record(item, if add { ChangeKind::Added } else { ChangeKind::Removed });
            }
            for a in &log.added {
                prop_assert!(!log.removed.contains(a));
            }
            let dedup = |v: &Vec<u8>| {
                let mut s = v.clone();
                s.sort_unstable();
                s.dedup();
                s.len()
            };
            prop_assert_eq!(dedup(&log.added), log.added.len());
            prop_assert_eq!(dedup(&log.removed), log.removed.len());
        }

        /// should_push is monotone in pending changes.
        #[test]
        fn policy_monotone(threshold in 0.01f64..1.0, list_len in 0usize..500, pending in 0usize..500) {
            let p = PushPolicy::new(threshold);
            if p.should_push(pending, list_len) {
                prop_assert!(p.should_push(pending + 1, list_len));
            }
        }
    }
}
