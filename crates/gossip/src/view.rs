//! Bounded, age-tracked partial views (paper §4.2, Algorithm 4).

use rand::seq::SliceRandom;
use rand::Rng;

/// One view entry: a contact, the age of the entry, and an
/// application payload (Flower-CDN: the contact's content summary).
///
/// Per the paper, the age denotes "the age of the entry since the
/// moment it was created", *not* the contact's lifetime: it is reset
/// to zero whenever fresh information about the contact arrives.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ViewEntry<P, S> {
    /// The contact this entry describes.
    pub peer: P,
    /// Gossip-period ticks since this entry was last refreshed.
    pub age: u32,
    /// Application payload (e.g. a content summary).
    pub data: S,
}

impl<P, S> ViewEntry<P, S> {
    /// A fresh (age-zero) entry.
    pub fn fresh(peer: P, data: S) -> Self {
        ViewEntry { peer, age: 0, data }
    }
}

/// A bounded partial view of an overlay: at most `capacity`
/// ([`Vgossip`] in the paper) entries, one per distinct peer.
#[derive(Clone, Debug)]
pub struct View<P, S> {
    entries: Vec<ViewEntry<P, S>>,
    capacity: usize,
}

impl<P: Copy + Eq, S: Clone> View<P, S> {
    /// An empty view bounded by `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "view capacity must be positive");
        View {
            entries: Vec::new(),
            capacity,
        }
    }

    /// The bound `Vgossip`.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the view has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterate over the entries.
    pub fn iter(&self) -> impl Iterator<Item = &ViewEntry<P, S>> {
        self.entries.iter()
    }

    /// Find a contact's entry.
    pub fn get(&self, peer: P) -> Option<&ViewEntry<P, S>> {
        self.entries.iter().find(|e| e.peer == peer)
    }

    /// True if the view knows `peer`.
    pub fn contains(&self, peer: P) -> bool {
        self.get(peer).is_some()
    }

    /// Paper: "periodically, the peer increments by 1 the age of all
    /// its view entries".
    pub fn increment_ages(&mut self) {
        for e in &mut self.entries {
            e.age = e.age.saturating_add(1);
        }
    }

    /// `select_oldest()` of Algorithm 4: the contact with the highest
    /// age (ties broken by position, i.e. insertion order).
    pub fn select_oldest(&self) -> Option<&ViewEntry<P, S>> {
        self.entries.iter().max_by_key(|e| e.age)
    }

    /// `select_subset()` of Algorithm 4: a uniform random subset of up
    /// to `l` (`Lgossip`) entries, cloned for sending.
    pub fn select_subset<R: Rng>(&self, rng: &mut R, l: usize) -> Vec<ViewEntry<P, S>> {
        let mut idx: Vec<usize> = (0..self.entries.len()).collect();
        idx.shuffle(rng);
        idx.truncate(l);
        idx.into_iter().map(|i| self.entries[i].clone()).collect()
    }

    /// Insert `peer` fresh (age 0) or refresh its entry with new data.
    pub fn insert_fresh(&mut self, peer: P, data: S) {
        if let Some(e) = self.entries.iter_mut().find(|e| e.peer == peer) {
            e.age = 0;
            e.data = data;
        } else {
            self.entries.push(ViewEntry::fresh(peer, data));
            self.truncate_to_recent();
        }
    }

    /// Remove a contact (dead peer, or a peer that changed locality;
    /// §5.4). Returns true if it was present.
    pub fn remove(&mut self, peer: P) -> bool {
        let before = self.entries.len();
        self.entries.retain(|e| e.peer != peer);
        self.entries.len() != before
    }

    /// `merge()` + `select_recent()` of Algorithm 4: fold the received
    /// `subset` and the fresh `partner` entry into the local view.
    /// Duplicates keep the instance with the smallest age; entries
    /// describing `myself` are discarded; finally the `Vgossip` most
    /// recent entries are kept.
    pub fn merge(&mut self, myself: P, partner: ViewEntry<P, S>, subset: Vec<ViewEntry<P, S>>) {
        for incoming in subset.into_iter().chain(std::iter::once(partner)) {
            if incoming.peer == myself {
                continue;
            }
            match self.entries.iter_mut().find(|e| e.peer == incoming.peer) {
                Some(existing) => {
                    if incoming.age < existing.age {
                        *existing = incoming;
                    }
                }
                None => self.entries.push(incoming),
            }
        }
        self.truncate_to_recent();
    }

    /// Remove every entry whose age is `>= t_dead`, returning the
    /// evicted contacts (failure detection; §5.1's `Tdead`).
    pub fn evict_older_than(&mut self, t_dead: u32) -> Vec<P> {
        let mut dead = Vec::new();
        self.entries.retain(|e| {
            if e.age >= t_dead {
                dead.push(e.peer);
                false
            } else {
                true
            }
        });
        dead
    }

    /// Keep only the `capacity` most recent (lowest-age) entries.
    /// Stable: among equal ages, earlier entries win.
    fn truncate_to_recent(&mut self) {
        if self.entries.len() > self.capacity {
            self.entries.sort_by_key(|e| e.age);
            self.entries.truncate(self.capacity);
        }
    }

    /// All contacts currently in the view.
    pub fn peers(&self) -> Vec<P> {
        self.entries.iter().map(|e| e.peer).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    type V = View<u32, &'static str>;

    fn view_with(peers: &[(u32, u32)]) -> V {
        // (peer, age) pairs.
        let mut v = V::new(10);
        for &(p, age) in peers {
            v.insert_fresh(p, "s");
            if let Some(e) = v.entries.last_mut() {
                e.age = age;
            }
            if let Some(e) = v.entries.iter_mut().find(|e| e.peer == p) {
                e.age = age;
            }
        }
        v
    }

    #[test]
    fn insert_and_refresh() {
        let mut v = V::new(5);
        v.insert_fresh(1, "a");
        v.increment_ages();
        assert_eq!(v.get(1).unwrap().age, 1);
        v.insert_fresh(1, "b");
        assert_eq!(v.get(1).unwrap().age, 0);
        assert_eq!(v.get(1).unwrap().data, "b");
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn select_oldest_picks_max_age() {
        let v = view_with(&[(1, 3), (2, 7), (3, 5)]);
        assert_eq!(v.select_oldest().unwrap().peer, 2);
    }

    #[test]
    fn select_subset_bounds() {
        let v = view_with(&[(1, 0), (2, 0), (3, 0), (4, 0)]);
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(v.select_subset(&mut rng, 2).len(), 2);
        assert_eq!(v.select_subset(&mut rng, 10).len(), 4);
        assert_eq!(v.select_subset(&mut rng, 0).len(), 0);
        // Subset entries are distinct peers.
        let s = v.select_subset(&mut rng, 4);
        let mut peers: Vec<u32> = s.iter().map(|e| e.peer).collect();
        peers.sort_unstable();
        peers.dedup();
        assert_eq!(peers.len(), 4);
    }

    #[test]
    fn merge_keeps_min_age_and_skips_self() {
        let mut v = view_with(&[(1, 5), (2, 2)]);
        let partner = ViewEntry::fresh(3, "p");
        let subset = vec![
            ViewEntry {
                peer: 1,
                age: 1,
                data: "new",
            }, // fresher than local
            ViewEntry {
                peer: 2,
                age: 9,
                data: "old",
            }, // staler than local
            ViewEntry {
                peer: 99,
                age: 0,
                data: "me",
            }, // self, must be skipped
        ];
        v.merge(99, partner, subset);
        assert_eq!(v.get(1).unwrap().age, 1);
        assert_eq!(v.get(1).unwrap().data, "new");
        assert_eq!(v.get(2).unwrap().age, 2);
        assert_eq!(v.get(2).unwrap().data, "s");
        assert!(v.contains(3));
        assert!(!v.contains(99));
    }

    #[test]
    fn merge_respects_capacity_keeping_recent() {
        let mut v = View::<u32, ()>::new(3);
        for p in 0..3 {
            v.insert_fresh(p, ());
        }
        // ages: all 0 → bump to make 0 the oldest
        v.increment_ages();
        if let Some(e) = v.entries.iter_mut().find(|e| e.peer == 0) {
            e.age = 10;
        }
        v.merge(99, ViewEntry::fresh(7, ()), vec![]);
        assert_eq!(v.len(), 3);
        assert!(!v.contains(0), "oldest entry evicted");
        assert!(v.contains(7));
    }

    #[test]
    fn evict_older_than_returns_dead() {
        let mut v = view_with(&[(1, 10), (2, 3), (3, 10)]);
        let dead = v.evict_older_than(10);
        assert_eq!(dead, vec![1, 3]);
        assert_eq!(v.len(), 1);
        assert!(v.contains(2));
    }

    #[test]
    fn remove_contact() {
        let mut v = view_with(&[(1, 0), (2, 0)]);
        assert!(v.remove(1));
        assert!(!v.remove(1));
        assert_eq!(v.peers(), vec![2]);
    }

    #[test]
    fn age_saturates() {
        let mut v = view_with(&[(1, u32::MAX - 1)]);
        v.increment_ages();
        v.increment_ages();
        assert_eq!(v.get(1).unwrap().age, u32::MAX);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = View::<u32, ()>::new(0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn arb_entries() -> impl Strategy<Value = Vec<ViewEntry<u16, u8>>> {
        proptest::collection::vec(
            (any::<u16>(), 0u32..100, any::<u8>()).prop_map(|(p, age, d)| ViewEntry {
                peer: p,
                age,
                data: d,
            }),
            0..60,
        )
    }

    proptest! {
        /// After any merge: size ≤ capacity, no duplicate peers, no
        /// self entry.
        #[test]
        fn merge_invariants(local in arb_entries(), incoming in arb_entries(), cap in 1usize..20, myself in any::<u16>()) {
            let mut v = View::new(cap);
            for e in local {
                if e.peer != myself {
                    v.insert_fresh(e.peer, e.data);
                }
            }
            v.merge(myself, ViewEntry::fresh(myself.wrapping_add(1), 0), incoming);
            prop_assert!(v.len() <= cap);
            prop_assert!(!v.contains(myself));
            let mut peers = v.peers();
            peers.sort_unstable();
            let n = peers.len();
            peers.dedup();
            prop_assert_eq!(peers.len(), n, "duplicate peers after merge");
        }

        /// select_subset returns at most min(l, len) distinct entries
        /// drawn from the view.
        #[test]
        fn subset_drawn_from_view(entries in arb_entries(), l in 0usize..30, seed in any::<u64>()) {
            let mut v = View::new(64);
            for e in &entries {
                v.insert_fresh(e.peer, e.data);
            }
            let mut rng = StdRng::seed_from_u64(seed);
            let s = v.select_subset(&mut rng, l);
            prop_assert!(s.len() <= l.min(v.len()));
            for e in &s {
                prop_assert!(v.contains(e.peer));
            }
        }
    }
}
