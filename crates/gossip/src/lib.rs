//! # gossip — age-based partial views and push dissemination
//!
//! The gossip machinery of Flower-CDN (§4.2 of the paper, Algorithms
//! 4–6), factored out as a reusable substrate. The design follows the
//! gossip-based membership protocols the paper builds on (Cyclon,
//! peer-sampling service):
//!
//! * every peer keeps a bounded *view* of contacts, each entry
//!   carrying an **age** (time since the entry was created) and a
//!   payload (for Flower-CDN: the contact's content summary);
//! * periodically a peer increments all ages, picks the **oldest**
//!   contact, and exchanges a random **subset** of its view plus its
//!   own current summary with it (active behaviour);
//! * on reception, the partner answers symmetrically (passive
//!   behaviour) and both **merge**: duplicate entries keep the lowest
//!   age, then the `Vgossip` most recent entries are retained;
//! * content peers additionally **push** deltas of their content list
//!   to their directory peer once the fraction of unreported changes
//!   passes a threshold (Algorithm 5), and the directory evicts
//!   entries whose age passes `Tdead` (§5.1).
//!
//! The module is generic over the peer identifier `P` and the entry
//! payload `S`, and contains no networking: protocols embed these
//! types and drive them from timer/message events.

pub mod push;
pub mod view;

pub use push::{ChangeKind, ChangeLog, PushPolicy};
pub use view::{View, ViewEntry};
