//! Epidemic convergence of the gossip substrate, tested in isolation:
//! a population of views running Algorithm 4's active/passive cycle
//! must discover the whole overlay and keep entry ages fresh — the
//! property Flower-CDN's content overlays rely on ("robust
//! self-monitoring of clusters").

use gossip::{View, ViewEntry};
use rand::rngs::StdRng;
use rand::SeedableRng;

type Peer = u32;

struct Sim {
    views: Vec<View<Peer, ()>>,
    rng: StdRng,
}

impl Sim {
    /// `n` peers; each starts knowing only its ring neighbour.
    fn new(n: usize, v_cap: usize, seed: u64) -> Sim {
        let mut views = Vec::with_capacity(n);
        for i in 0..n {
            let mut v = View::new(v_cap);
            v.insert_fresh(((i + 1) % n) as Peer, ());
            views.push(v);
        }
        Sim {
            views,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// One full gossip round: every peer runs the active behaviour of
    /// Algorithm 4 once (increment ages, pick oldest, exchange
    /// subsets, merge both sides).
    fn round(&mut self, l: usize) {
        let n = self.views.len();
        for i in 0..n {
            self.views[i].increment_ages();
            let Some(partner) = self.views[i].select_oldest().map(|e| e.peer) else {
                continue;
            };
            let p = partner as usize;
            let my_subset = self.views[i].select_subset(&mut self.rng, l);
            let their_subset = self.views[p].select_subset(&mut self.rng, l);
            self.views[p].merge(partner, ViewEntry::fresh(i as Peer, ()), my_subset);
            self.views[i].merge(i as Peer, ViewEntry::fresh(partner, ()), their_subset);
        }
    }

    fn known_fraction(&self) -> f64 {
        let n = self.views.len();
        let total: usize = self.views.iter().map(|v| v.len()).sum();
        total as f64 / (n * n.min(self.views[0].capacity())) as f64
    }
}

#[test]
fn ring_seed_converges_to_full_views() {
    // 40 peers, views of 20, Lgossip 5: within a few dozen rounds all
    // views should be full of distinct members.
    let mut sim = Sim::new(40, 20, 1);
    for _ in 0..40 {
        sim.round(5);
    }
    for (i, v) in sim.views.iter().enumerate() {
        assert_eq!(v.len(), 20, "peer {i} view not full: {}", v.len());
        assert!(!v.contains(i as Peer), "peer {i} contains itself");
    }
    assert!(sim.known_fraction() > 0.99);
}

#[test]
fn ages_stay_bounded_in_live_overlay() {
    // With everyone gossiping, no entry should grow arbitrarily old:
    // the oldest-first partner choice recycles stale entries.
    let mut sim = Sim::new(30, 15, 2);
    for _ in 0..60 {
        sim.round(4);
    }
    let max_age = sim
        .views
        .iter()
        .flat_map(|v| v.iter().map(|e| e.age))
        .max()
        .unwrap();
    assert!(
        max_age < 40,
        "entries should be refreshed by the oldest-first policy, max age {max_age}"
    );
}

#[test]
fn dissemination_is_epidemic_not_linear() {
    // A single well-known peer (0) starts known by one other; after
    // log-ish rounds a large share of the population knows it.
    let n = 64;
    let mut sim = Sim::new(n, 32, 3);
    for _ in 0..16 {
        sim.round(8);
    }
    let know_zero = sim
        .views
        .iter()
        .enumerate()
        .filter(|(i, v)| *i != 0 && v.contains(0))
        .count();
    assert!(
        know_zero > n / 3,
        "epidemic spread too slow: {know_zero}/{n} know peer 0 after 16 rounds"
    );
}

#[test]
fn dead_peers_age_out_everywhere() {
    let n = 30;
    let mut sim = Sim::new(n, 15, 4);
    for _ in 0..30 {
        sim.round(4);
    }
    // Peer 7 "dies": it stops gossiping; everyone else keeps going and
    // evicts entries older than Tdead.
    let t_dead = 12;
    for _ in 0..40 {
        {
            // manual round skipping peer 7, with eviction
            let nviews = sim.views.len();
            for i in 0..nviews {
                if i == 7 {
                    continue;
                }
                sim.views[i].increment_ages();
                sim.views[i].evict_older_than(t_dead);
                let Some(partner) = sim.views[i].select_oldest().map(|e| e.peer) else {
                    continue;
                };
                if partner == 7 {
                    // The dead peer does not answer; the caller keeps
                    // the entry until it ages out.
                    continue;
                }
                let p = partner as usize;
                let my_subset = sim.views[i].select_subset(&mut sim.rng, 4);
                let their_subset = sim.views[p].select_subset(&mut sim.rng, 4);
                sim.views[p].merge(partner, ViewEntry::fresh(i as Peer, ()), my_subset);
                sim.views[i].merge(i as Peer, ViewEntry::fresh(partner, ()), their_subset);
            }
        };
    }
    let still_known = sim
        .views
        .iter()
        .enumerate()
        .filter(|(i, v)| *i != 7 && v.contains(7))
        .count();
    // Gossip copies can resurrect entries briefly, but the overall
    // knowledge of the dead peer must collapse.
    assert!(
        still_known <= n / 4,
        "dead peer still known by {still_known}/{n} views after ageing"
    );
}
