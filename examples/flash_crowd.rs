//! Flash crowd: the scenario motivating the paper — an
//! under-provisioned website suddenly referenced by a popular site.
//!
//! One active website takes a query storm; we watch the origin
//! server's load per window collapse as the community absorbs the
//! crowd, exactly the "server load relief" the hit ratio stands for
//! in §6 ("the fraction of queries reflected by the hit ratio are not
//! redirected to the server").
//!
//! ```sh
//! cargo run --release --example flash_crowd
//! ```

use flower_cdn::core::system::{FlowerSystem, SystemConfig};
use flower_cdn::simnet::SimDuration;

fn main() {
    let mut cfg = SystemConfig::small_test();
    cfg.seed = 99;
    // One website, hammered: a 50 q/s flash crowd for 10 minutes.
    cfg.catalog.active_websites = 1;
    cfg.workload.query_rate_per_sec = 50.0;
    cfg.workload.duration_ms = 10 * 60 * 1000;
    cfg.window = SimDuration::from_secs(30);

    println!(
        "flash crowd: {} q/s against one website of {} objects…",
        cfg.workload.query_rate_per_sec, cfg.catalog.objects_per_website
    );
    let (sys, report) = FlowerSystem::run(&cfg);

    // The origin server records one `server_load` gauge sample per
    // query it served; hits never reach it.
    let loads = sys
        .engine()
        .gauges()
        .get("server_load")
        .map(|s| s.points())
        .unwrap_or_default();
    let hits = sys.engine().query_stats().hit_series().points();

    println!("\nwindow   queries-at-server   hit ratio");
    for (i, h) in hits.iter().enumerate() {
        if h.count == 0 {
            continue;
        }
        let at_server = loads.get(i).map(|p| p.count).unwrap_or(0);
        let bar = "#".repeat((at_server as usize).min(60));
        println!(
            "{:>5}s   {:>6} {:<60}   {:.2}",
            h.at.as_secs(),
            at_server,
            bar,
            h.mean()
        );
    }

    let first = loads
        .iter()
        .find(|p| p.count > 0)
        .map(|p| p.count)
        .unwrap_or(0);
    let last = loads
        .iter()
        .rev()
        .find(|p| p.count > 0)
        .map(|p| p.count)
        .unwrap_or(0);
    println!(
        "\nserver load: {first} queries in the first window → {last} in the last ({}% relief)",
        (last * 100).checked_div(first).map_or(0, |v| 100 - v)
    );
    println!(
        "final hit ratio: {:.3} over {} queries",
        report.hit_ratio, report.resolved
    );
    assert!(
        last * 2 < first || report.hit_ratio > 0.8,
        "the community should absorb the flash crowd"
    );
    println!("ok — the community absorbed the crowd");
}
