//! Driving the public API directly: custom topology, §5.3 scale-up
//! key scheme, pluggable DHT substrate selection, and inspection of
//! the running overlay.
//!
//! Shows what the `FlowerSystem` harness does under the hood, for
//! users who want to embed the protocol in their own simulations.
//! The D-ring runs over either of the two shipped substrates (§3.1:
//! "any existing structured overlay based on a standard DHT, e.g.,
//! Chord, Pastry") — pick one with the `FLOWER_SUBSTRATE` environment
//! variable or the first command-line argument:
//!
//! ```sh
//! cargo run --release --example custom_deployment            # chord
//! cargo run --release --example custom_deployment -- pastry
//! FLOWER_SUBSTRATE=pastry cargo run --release --example custom_deployment
//! ```

use flower_cdn::chord;
use flower_cdn::core::id::KeyScheme;
use flower_cdn::core::substrate::SubstrateKind;
use flower_cdn::core::system::{FlowerSystem, SystemConfig};
use flower_cdn::simnet::{Locality, Topology, TopologyConfig};
use flower_cdn::workload::WebsiteId;

fn main() {
    // 0. Substrate selection: CLI argument, environment variable, or
    //    the Chord default.
    let substrate = std::env::args()
        .nth(1)
        .or_else(|| std::env::var("FLOWER_SUBSTRATE").ok())
        .map(|s| SubstrateKind::parse(&s).expect("substrate must be chord or pastry"))
        .unwrap_or_default();
    println!("D-ring substrate: {substrate}");

    // 1. A custom underlay: 800 nodes, 4 localities, tighter latency
    //    range than the paper's.
    let topo_cfg = TopologyConfig {
        nodes: 800,
        localities: 4,
        min_latency_ms: 5,
        max_latency_ms: 300,
        ..Default::default()
    };
    let topo = Topology::generate(&topo_cfg, 123);
    println!(
        "underlay: {} nodes in {} localities",
        topo.num_nodes(),
        topo.num_localities()
    );
    for l in 0..topo.num_localities() as u16 {
        println!("  locality {l}: {} nodes", topo.population(Locality(l)));
    }

    // 2. The §5.3 scale-up key scheme: b = 2 instance bits allow four
    //    directory peers (hence four content overlays) per
    //    (website, locality).
    let scheme = KeyScheme::new(8, 2);
    let ws = WebsiteId(3);
    println!("\n§5.3 extended D-ring keys for {ws}:");
    for loc in 0..2u16 {
        for inst in 0..scheme.instances() as u32 {
            let key = scheme.key_with_instance(ws, Locality(loc), inst);
            println!(
                "  d(ws={ws}, loc={loc}, instance={inst}) = {key} (locality_of={}, instance_of={})",
                scheme.locality_of(key),
                scheme.instance_of(key)
            );
        }
    }
    // All four instances of a (ws, loc) pair sit next to each other on
    // the ring, so Algorithm 2 still confines routing to the website.
    let a = scheme.key_with_instance(ws, Locality(0), 0);
    let b = scheme.key_with_instance(ws, Locality(0), 3);
    assert!(scheme.same_website(a, b));
    assert_eq!(chord::ChordId(b.0 - a.0), chord::ChordId(3));

    // 3. A full system on the custom underlay, over the selected
    //    substrate (purely a config choice).
    let cfg = SystemConfig {
        topology: topo_cfg,
        workload: flower_cdn::workload::WorkloadConfig {
            query_rate_per_sec: 8.0,
            duration_ms: 5 * 60 * 1000,
            ..Default::default()
        },
        catalog: flower_cdn::workload::CatalogConfig {
            num_websites: 10,
            active_websites: 3,
            objects_per_website: 50,
            ..Default::default()
        },
        flower: flower_cdn::core::FlowerConfig {
            substrate,
            ..flower_cdn::core::FlowerConfig::fast_test()
        },
        seed: 123,
        window: flower_cdn::simnet::SimDuration::from_secs(30),
        shards: 2,
    };
    let (sys, report) = FlowerSystem::run(&cfg);
    println!("\ncustom deployment after 5 simulated minutes ({substrate} substrate):");
    println!(
        "  hit ratio {:.3}, lookup {:.0} ms, transfer {:.0} ms",
        report.hit_ratio, report.mean_lookup_ms, report.mean_transfer_ms
    );

    // 4. Inspect a directory peer's state through the public API.
    let d = sys
        .initial_directory(WebsiteId(0), Locality(0))
        .expect("directory exists");
    let node = sys.engine().node(d);
    let role = node.dir_role().expect("still a directory");
    println!(
        "  d(ws0, loc0) on node {d}: {} content peers indexed, {} substrate neighbours",
        role.dir.overlay_size(),
        role.substrate.known_peers().len()
    );
    assert!(report.resolved > 0);
    println!("ok");
}
