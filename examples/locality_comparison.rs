//! Flower-CDN vs Squirrel on the same trace: the paper's headline
//! comparison (Figures 6–8) at example scale.
//!
//! Both systems see the same topology, catalog, query trace and seed;
//! only the overlay differs — locality-aware D-ring + content
//! overlays vs one locality-blind DHT.
//!
//! ```sh
//! cargo run --release --example locality_comparison
//! ```

use flower_cdn::core::system::{FlowerSystem, SystemConfig};
use flower_cdn::squirrel::{SquirrelConfig, SquirrelSystem};

fn main() {
    let fcfg = SystemConfig::small_test();
    let mut scfg = SquirrelConfig::small_test();
    scfg.seed = fcfg.seed;

    println!("running Flower-CDN…");
    let (fsys, f) = FlowerSystem::run(&fcfg);
    println!("running Squirrel on the same trace…");
    let (ssys, s) = SquirrelSystem::run(&scfg);

    println!("\n== side by side ==");
    println!("{:<28} {:>12} {:>12}", "metric", "flower-cdn", "squirrel");
    println!(
        "{:<28} {:>12} {:>12}",
        "queries resolved", f.resolved, s.resolved
    );
    println!(
        "{:<28} {:>12.3} {:>12.3}",
        "hit ratio", f.hit_ratio, s.hit_ratio
    );
    println!(
        "{:<28} {:>12.1} {:>12.1}",
        "mean lookup latency (ms)", f.mean_lookup_ms, s.mean_lookup_ms
    );
    println!(
        "{:<28} {:>12.1} {:>12.1}",
        "mean transfer dist (ms)", f.mean_transfer_ms, s.mean_transfer_ms
    );

    let fq = fsys.engine().query_stats();
    let sq = ssys.engine().query_stats();
    println!("\nlookup latency distribution (150 ms buckets, Figure 7(b)):");
    let fd = fq.lookup_hist().distribution();
    let sd = sq.lookup_hist().distribution();
    for (i, (start, ff)) in fd.iter().enumerate() {
        let label = if i + 1 == fd.len() {
            format!(">{start}ms")
        } else {
            format!("{start}-{}ms", start + 150)
        };
        println!(
            "  {:<12} flower {:>5.1}%   squirrel {:>5.1}%",
            label,
            ff * 100.0,
            sd[i].1 * 100.0
        );
    }

    println!("\ntransfer distance distribution (100 ms buckets, Figure 8(b)):");
    let fd = fq.transfer_hist().distribution();
    let sd = sq.transfer_hist().distribution();
    for (i, (start, ff)) in fd.iter().enumerate() {
        let label = if i + 1 == fd.len() {
            format!(">{start}ms")
        } else {
            format!("{start}-{}ms", start + 100)
        };
        println!(
            "  {:<12} flower {:>5.1}%   squirrel {:>5.1}%",
            label,
            ff * 100.0,
            sd[i].1 * 100.0
        );
    }

    let speedup = s.mean_lookup_ms / f.mean_lookup_ms.max(1e-9);
    let distance = s.mean_transfer_ms / f.mean_transfer_ms.max(1e-9);
    println!("\nlookup speedup ×{speedup:.1} (paper: ×9 at full scale)");
    println!("transfer-distance reduction ×{distance:.1} (paper: ×2 at full scale)");
    assert!(
        speedup > 1.5,
        "locality-awareness must win on lookup latency"
    );
    println!("ok");
}
