//! Quickstart: build a small Flower-CDN deployment, run ten simulated
//! minutes of the paper's workload, and print the four metrics of §6.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use flower_cdn::core::system::{FlowerSystem, SystemConfig};

fn main() {
    // A miniature deployment: 300 underlay nodes, 3 localities,
    // 6 websites (2 active), fast protocol periods.
    let mut cfg = SystemConfig::small_test();
    cfg.seed = 7;

    println!(
        "building Flower-CDN: {} nodes, {} localities, {} websites…",
        cfg.topology.nodes, cfg.topology.localities, cfg.catalog.num_websites
    );
    let (sys, report) = FlowerSystem::run(&cfg);

    println!("\n== Flower-CDN quickstart report ==");
    println!("queries submitted:     {}", report.submitted);
    println!("queries resolved:      {}", report.resolved);
    println!("hit ratio:             {:.3}", report.hit_ratio);
    println!("mean lookup latency:   {:.1} ms", report.mean_lookup_ms);
    println!("mean transfer dist.:   {:.1} ms", report.mean_transfer_ms);
    println!(
        "background traffic:    {:.1} bps/peer (gossip + push)",
        report.background_bps
    );
    println!("participants:          {}", report.participants);
    println!(
        "local hits:            {:.1}%",
        report.local_hit_fraction * 100.0
    );

    // Show the convergence the paper's Figure 5 plots.
    println!("\nhit ratio per {}-second window:", cfg.window.as_secs());
    for p in sys.engine().query_stats().hit_series().points() {
        if p.count > 0 {
            let bar = "#".repeat((p.mean() * 40.0) as usize);
            println!("  {:>6}s  {:.2}  {}", p.at.as_secs(), p.mean(), bar);
        }
    }

    assert!(report.hit_ratio > 0.3, "sanity: the CDN should be serving");
    println!("\nok — see examples/locality_comparison.rs for the Squirrel face-off");
}
