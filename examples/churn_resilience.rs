//! Churn resilience: kill directory peers mid-run and churn a third
//! of the content peers, then watch §5's machinery — keepalive-based
//! failure detection, jittered directory replacement (§5.2), and
//! redirection-failure retries (§5.1) — keep the CDN serving.
//!
//! ```sh
//! cargo run --release --example churn_resilience
//! ```

use flower_cdn::core::system::{FlowerSystem, SystemConfig};
use flower_cdn::simnet::{ChurnConfig, ChurnScript, Locality, NodeId, SimDuration, SimTime};
use flower_cdn::workload::WebsiteId;

fn main() {
    let mut cfg = SystemConfig::small_test();
    cfg.seed = 5;
    cfg.workload.duration_ms = 20 * 60 * 1000; // 20 simulated minutes
    let horizon = SimTime::from_ms(cfg.workload.duration_ms);

    let mut sys = FlowerSystem::build(&cfg);

    // Kill every active website's directory peer in locality 0 at t=5min.
    let mut kills = Vec::new();
    for ws in 0..cfg.catalog.active_websites as u16 {
        if let Some(d) = sys.initial_directory(WebsiteId(ws), Locality(0)) {
            kills.push((SimTime::from_mins(5), d));
        }
    }
    println!("killing {} directory peers at t=5min", kills.len());
    sys.apply_churn(&ChurnScript::kill_at(&kills));

    // Session churn over a third of each community.
    let mut affected: Vec<NodeId> = Vec::new();
    for ws in 0..cfg.catalog.active_websites as u16 {
        for l in 0..cfg.topology.localities as u16 {
            let comm = sys.community(WebsiteId(ws), Locality(l));
            affected.extend(comm.iter().take(comm.len() / 3));
        }
    }
    affected.sort_unstable_by_key(|n| n.0);
    affected.dedup();
    let churn = ChurnConfig {
        start: SimTime::from_mins(2),
        end: horizon,
        mean_session: SimDuration::from_mins(5),
        mean_downtime: SimDuration::from_mins(1),
        permanent: false,
    };
    let script = ChurnScript::generate(&churn, &affected, cfg.seed);
    println!(
        "churning {} content peers ({} events)",
        affected.len(),
        script.len()
    );
    sys.apply_churn(&script);

    sys.run_until(horizon + SimDuration::from_secs(30));
    let r = sys.report();

    let (mut won, mut lost) = (0u64, 0u64);
    for n in sys.engine().topology().node_ids() {
        won += sys.engine().node(n).stats.replacements_won;
        lost += sys.engine().node(n).stats.replacements_lost;
    }

    println!("\n== churn resilience report ==");
    println!("resolved:               {}/{}", r.resolved, r.submitted);
    println!("hit ratio:              {:.3}", r.hit_ratio);
    println!(
        "redirection failures:   {} (stale entries retried, §5.1)",
        r.redirection_failures
    );
    println!("directory replacements: {won} won, {lost} stood down (§5.2)");

    assert!(
        r.resolved as f64 > r.submitted as f64 * 0.9,
        "queries must keep resolving"
    );
    assert!(
        won >= 1,
        "killed directories should be replaced by content peers"
    );
    println!("\nok — the overlay survived the churn");
}
