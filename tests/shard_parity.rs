//! The tentpole guarantee of the engine's execution knobs, measured
//! on the full Flower-CDN system: the same seed produces *identical*
//! query statistics and traffic totals whether the engine runs on one
//! shard or several, and whether events are stored in the calendar
//! queue or the binary heap — sharding and event storage are
//! execution details, never modelling changes.
//!
//! Also pins the per-node RNG streams: a fixed seed must keep
//! producing the same hit-ratio statistics from PR to PR. If a change
//! *intentionally* alters simulation behaviour (protocol fix, RNG
//! discipline change), update the pinned constants alongside it — the
//! pin exists to make such changes loud, not to forbid them.

use flower_cdn::core::system::{FlowerSystem, SystemConfig, SystemReport};
use flower_cdn::simnet::EventQueueKind;

fn run_with(shards: usize, seed: u64, queue: EventQueueKind) -> (FlowerSystem, SystemReport) {
    let mut cfg = SystemConfig::small_test();
    cfg.seed = seed;
    cfg.shards = shards;
    cfg.topology.event_queue = queue;
    FlowerSystem::run(&cfg)
}

fn run_with_shards(shards: usize, seed: u64) -> (FlowerSystem, SystemReport) {
    run_with(shards, seed, EventQueueKind::default())
}

/// Everything comparable about a finished run, down to exact floats
/// (all derived from integer counters, so bit-equality is fair).
fn fingerprint(sys: &FlowerSystem, r: &SystemReport) -> (u64, u64, String, u64, u64, String) {
    let engine = sys.engine();
    let q = engine.query_stats();
    let per_window: Vec<(u64, u64)> = q
        .hit_series()
        .points()
        .iter()
        .map(|p| (p.count, p.sum as u64))
        .collect();
    (
        r.submitted,
        r.resolved,
        format!(
            "{:.12}/{:.9}/{:.9}/{:.9}",
            r.hit_ratio, r.mean_lookup_ms, r.mean_transfer_ms, r.background_bps
        ),
        engine.events_processed(),
        engine.traffic().messages(),
        format!(
            "{per_window:?} cum_last={:?} local={:.12} dirload={:.9}/{}",
            q.cumulative_hit_series().last().copied(),
            r.local_hit_fraction,
            r.dir_load_max_mean,
            r.dir_instances_live,
        ),
    )
}

#[test]
fn sharded_run_produces_identical_statistics() {
    // small_test has 3 localities, so 3 is the maximum effective shard
    // count; 4 exercises the clamp.
    let (ref_sys, ref_report) = run_with_shards(1, 42);
    assert_eq!(ref_sys.engine().num_shards(), 1);
    let reference = fingerprint(&ref_sys, &ref_report);
    for shards in [2usize, 3, 4] {
        let (sys, report) = run_with_shards(shards, 42);
        assert_eq!(sys.engine().num_shards(), shards.min(3));
        assert_eq!(
            fingerprint(&sys, &report),
            reference,
            "shards={shards} diverged from the single-shard run"
        );
    }
}

/// The event-queue backend is an execution detail like the shard
/// count: the calendar queue and the binary heap must yield the same
/// fingerprint under every shard count, for several seeds.
#[test]
fn queue_backend_produces_identical_statistics() {
    for seed in [42u64, 7] {
        for shards in [1usize, 3] {
            let (cal_sys, cal_report) = run_with(shards, seed, EventQueueKind::Calendar);
            let (heap_sys, heap_report) = run_with(shards, seed, EventQueueKind::Heap);
            assert_eq!(cal_sys.engine().queue_kind(), EventQueueKind::Calendar);
            assert_eq!(heap_sys.engine().queue_kind(), EventQueueKind::Heap);
            assert_eq!(
                fingerprint(&cal_sys, &cal_report),
                fingerprint(&heap_sys, &heap_report),
                "seed={seed} shards={shards}: queue backends diverged"
            );
        }
    }
}

/// The same guarantee at the target shard width: on an 8-locality
/// deployment, 2/4/8 shards (and 9, exercising the clamp) all
/// reproduce the single-shard fingerprint bit for bit.
#[test]
fn eight_shard_run_produces_identical_statistics() {
    fn wide_cfg(shards: usize) -> SystemConfig {
        let mut cfg = SystemConfig::small_test();
        cfg.topology.localities = 8;
        cfg.topology.nodes = 480;
        cfg.seed = 42;
        cfg.shards = shards;
        cfg
    }
    let (ref_sys, ref_report) = FlowerSystem::run(&wide_cfg(1));
    assert_eq!(ref_sys.engine().num_shards(), 1);
    let reference = fingerprint(&ref_sys, &ref_report);
    for shards in [2usize, 4, 8, 9] {
        let (sys, report) = FlowerSystem::run(&wide_cfg(shards));
        assert_eq!(sys.engine().num_shards(), shards.min(8));
        assert_eq!(
            fingerprint(&sys, &report),
            reference,
            "shards={shards} diverged from the single-shard run at 8 localities"
        );
    }
}

/// Core placement and thread pinning are wall-clock knobs only: any
/// shard→core map, with pinning on or off, produces the bit-identical
/// run. (On hosts with fewer cores than the map names, pinning
/// degrades gracefully — which this test also exercises.)
#[test]
fn placement_and_pinning_never_change_results() {
    fn run_placed(core_map: Option<Vec<usize>>, pin: bool) -> (FlowerSystem, SystemReport) {
        let mut cfg = SystemConfig::small_test();
        cfg.seed = 42;
        cfg.shards = 3;
        cfg.topology.pin = pin;
        let mut sys = FlowerSystem::build(&cfg);
        if let Some(map) = core_map {
            sys.engine_mut().set_placement(map, pin);
        }
        let horizon = sys.drain_horizon();
        sys.run_until(horizon);
        let report = sys.report();
        (sys, report)
    }
    let (ref_sys, ref_report) = run_placed(None, false);
    let reference = fingerprint(&ref_sys, &ref_report);
    for (map, pin) in [
        (Some(vec![0, 0, 0]), false),
        (Some(vec![2, 1, 0]), false),
        (Some(vec![0, 1, 2]), true),
        (None, true),
    ] {
        let (sys, report) = run_placed(map.clone(), pin);
        assert_eq!(
            fingerprint(&sys, &report),
            reference,
            "core_map={map:?} pin={pin} changed simulation results"
        );
    }
}

/// The metric registry obeys the same law as the statistics above:
/// every sim-scoped cell (counters, gauges and histogram buckets
/// tagged `Scope::Sim`) is a pure function of the simulated trace, so
/// merging the per-shard cells in shard order yields the bit-identical
/// flattened fingerprint under every shard count, queue backend and
/// lookahead mode. Exec-scoped cells (epochs, fused rounds, barrier
/// idle) are deliberately excluded — they measure the execution, not
/// the simulation.
#[test]
fn metric_registry_sim_cells_are_execution_invariant() {
    use flower_cdn::simnet::LookaheadKind;
    let run = |shards: usize, queue: EventQueueKind, lookahead: LookaheadKind| {
        let mut cfg = SystemConfig::small_test();
        cfg.seed = 42;
        cfg.shards = shards;
        cfg.topology.event_queue = queue;
        cfg.topology.lookahead = lookahead;
        let (sys, _) = FlowerSystem::run(&cfg);
        sys.engine().metrics().sim_fingerprint()
    };
    let reference = run(1, EventQueueKind::Calendar, LookaheadKind::GlobalFloor);
    assert!(
        reference.iter().any(|&v| v > 0),
        "the single-shard run must populate sim-scoped metric cells"
    );
    for shards in [1usize, 2, 4] {
        for queue in [EventQueueKind::Calendar, EventQueueKind::Heap] {
            for lookahead in [LookaheadKind::GlobalFloor, LookaheadKind::Matrix] {
                assert_eq!(
                    run(shards, queue, lookahead),
                    reference,
                    "shards={shards} queue={queue} lookahead={lookahead:?}: \
                     sim-scoped metric cells diverged"
                );
            }
        }
    }
}

#[test]
fn sharded_runs_track_seed_changes_together() {
    // Different seed ⇒ different trace, under every shard count alike.
    let (s1, r1) = run_with_shards(3, 7);
    let (s2, r2) = run_with_shards(3, 8);
    assert_ne!(fingerprint(&s1, &r1), fingerprint(&s2, &r2));
}

/// §5.3 PetalUp parity: with `instance_bits = 2`, a Zipf-skewed
/// website workload and split/merge thresholds low enough for petals
/// to actually resize mid-run, every shard count still produces the
/// identical fingerprint — the instance choice and the split/merge
/// decisions are pure functions of per-node protocol state, never of
/// the engine's shard layout.
#[test]
fn petalup_runs_are_shard_deterministic_and_flatten_load() {
    fn petal_cfg(shards: usize, bits: u32) -> SystemConfig {
        let mut cfg = SystemConfig::small_test();
        cfg.seed = 42;
        cfg.shards = shards;
        cfg.flower.instance_bits = bits;
        cfg.flower.petal_split_threshold = 4;
        cfg.flower.petal_merge_floor = 2;
        cfg.workload.website_zipf_alpha = 1.5;
        cfg
    }
    let (ref_sys, ref_report) = FlowerSystem::run(&petal_cfg(1, 2));
    let reference = fingerprint(&ref_sys, &ref_report);
    for shards in [2usize, 3] {
        let (sys, report) = FlowerSystem::run(&petal_cfg(shards, 2));
        assert_eq!(
            fingerprint(&sys, &report),
            reference,
            "shards={shards} diverged under instance_bits=2"
        );
    }
    // The petals actually resized: hot ones split while the D-ring
    // carried the join wave, and merged back once the communities
    // saturated and directory traffic dried up.
    let splits: u64 = ref_sys
        .engine()
        .topology()
        .node_ids()
        .map(|n| ref_sys.engine().node(n).stats.petal_splits)
        .sum();
    let merges: u64 = ref_sys
        .engine()
        .topology()
        .node_ids()
        .map(|n| ref_sys.engine().node(n).stats.petal_merges)
        .sum();
    assert!(splits >= 1, "no petal ever split");
    assert!(merges >= 1, "no petal ever merged back");
    // And the per-instance load is flatter than the flat D-ring's on
    // the same workload.
    let (_, flat) = FlowerSystem::run(&petal_cfg(1, 0));
    assert!(
        ref_report.dir_load_max_mean > 0.0 && flat.dir_load_max_mean > 0.0,
        "both runs must see directory load"
    );
    assert!(
        ref_report.dir_load_max_mean < flat.dir_load_max_mean,
        "PetalUp must flatten directory load: b2 {:.3} vs flat {:.3}",
        ref_report.dir_load_max_mean,
        flat.dir_load_max_mean
    );
}

/// Regression pin for the per-node RNG streams
/// (`StdRng::seed_from_u64(hash(seed, node_id))`): seed 42 on the
/// small test deployment must keep yielding exactly these statistics
/// — under *both* event-queue backends, which may never disagree.
///
/// Re-verified against the §5.2 summary-clear-on-push change: the
/// pinned scenario runs without churn, so no directory is ever
/// seeded from gossip summaries and the clear never fires — the
/// constants hold bit-for-bit (the recovery tests exercise the
/// cleared path).
#[test]
fn fixed_seed_yields_pinned_hit_ratio_stats() {
    for queue in [EventQueueKind::Calendar, EventQueueKind::Heap] {
        let (_, r) = run_with(1, 42, queue);
        assert_eq!(r.submitted, 6033, "{queue}: query trace changed");
        assert_eq!(r.resolved, 6033, "{queue}: resolution count changed");
        assert!(
            (r.hit_ratio - 0.912978617603).abs() < 1e-9,
            "{queue}: hit ratio drifted: {:.12}",
            r.hit_ratio
        );
        assert!(
            (r.mean_lookup_ms - 40.129289).abs() < 1e-3,
            "{queue}: mean lookup drifted: {:.6}",
            r.mean_lookup_ms
        );
        assert_eq!(r.participants, 122, "{queue}: participant count changed");
        // And the pin holds under sharded execution too, by
        // construction.
        let (_, sharded) = run_with(3, 42, queue);
        assert_eq!(sharded.submitted, r.submitted);
        assert!((sharded.hit_ratio - r.hit_ratio).abs() < 1e-15);
    }
}

/// Property check on the fault-injection plane: *any* scripted
/// combination of a partition (with heal), probabilistic link loss
/// and a correlated regional failure with staggered recovery must
/// leave the run bit-identical across shard counts 1/2/4 and both
/// event-queue backends. Partition cuts are decided at delivery time
/// from the static script, loss draws come from the emitter's own RNG
/// stream, and regional recovery is a pure stagger off the node index
/// — none of it may observe the shard layout.
mod fault_plane_proptests {
    use super::*;
    use flower_cdn::simnet::{
        FaultPlane, LinkLoss, Locality, Partition, RegionalFailure, SimDuration, SimTime,
    };
    use proptest::prelude::*;

    fn faulted_cfg(shards: usize, queue: EventQueueKind) -> SystemConfig {
        let mut cfg = SystemConfig::small_test();
        cfg.seed = 42;
        cfg.shards = shards;
        cfg.topology.event_queue = queue;
        // Arm the timeout path so swallowed lookups retry and degrade
        // instead of hanging — the hardening under test.
        cfg.flower.query_timeout = Some(SimDuration::from_secs(2));
        cfg
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(3))]
        #[test]
        fn scripted_faults_stay_shard_and_queue_invariant(
            part_start in 60u64..240,
            part_len in 30u64..120,
            loss_pct in 5u64..45,
            victim in 0u16..3,
            stagger_ms in 1u64..200,
        ) {
            let plane = FaultPlane::new()
                .partition(Partition {
                    start: SimTime::from_secs(part_start),
                    heal: SimTime::from_secs(part_start + part_len),
                    side_a: vec![Locality(victim)],
                    side_b: vec![Locality((victim + 1) % 3)],
                })
                .link_loss(LinkLoss {
                    start: SimTime::from_secs(part_start / 2),
                    end: SimTime::from_secs(part_start / 2 + part_len),
                    probability: loss_pct as f64 / 100.0,
                    cross_locality_only: true,
                })
                .regional_failure(RegionalFailure {
                    at: SimTime::from_secs(part_start + part_len + 30),
                    locality: Locality((victim + 2) % 3),
                    recover_start: SimTime::from_secs(part_start + part_len + 90),
                    stagger: SimDuration::from_ms(stagger_ms),
                });
            let run = |shards: usize, queue: EventQueueKind| {
                let cfg = faulted_cfg(shards, queue);
                let mut sys = FlowerSystem::build(&cfg);
                sys.apply_faults(&plane);
                let horizon = sys.drain_horizon();
                sys.run_until(horizon);
                let report = sys.report();
                fingerprint(&sys, &report)
            };
            let reference = run(1, EventQueueKind::Calendar);
            for shards in [2usize, 4] {
                for queue in [EventQueueKind::Calendar, EventQueueKind::Heap] {
                    prop_assert!(
                        run(shards, queue) == reference,
                        "shards={} queue={} diverged under scripted faults",
                        shards,
                        queue
                    );
                }
            }
        }
    }
}

/// Regression pin for the chaos flash-crowd cell at small scale: the
/// surged query trace and the availability analysis over it must keep
/// producing exactly these statistics from PR to PR (same contract as
/// [`fixed_seed_yields_pinned_hit_ratio_stats`]: update the constants
/// alongside an *intentional* behaviour change, loudly).
#[test]
fn flash_crowd_cell_pins_dip_and_recovery() {
    use flower_cdn::experiments::exps::{availability, chaos_flash_config, RECOVERY_FRACTION};
    use flower_cdn::simnet::{SimDuration, SimTime};
    let cfg = chaos_flash_config(600, 1, 42);
    let (sys, r) = FlowerSystem::run(&cfg);
    let a = availability(
        &sys.engine().query_stats().hit_series().points(),
        SimDuration::from_secs(15),
        SimTime::from_secs(60),
        SimTime::from_secs(150),
        SimTime::from_secs(240),
    );
    assert_eq!(r.submitted, 6566, "query trace changed: {}", r.submitted);
    assert_eq!(r.resolved, 6566, "resolution count changed: {}", r.resolved);
    assert!(
        (a.pre_hit - 0.369175627240).abs() < 1e-9,
        "pre-surge hit ratio drifted: {:.12}",
        a.pre_hit
    );
    assert!(
        (a.dip_depth - 0.026709873815).abs() < 1e-9,
        "surge dip depth drifted: {:.12}",
        a.dip_depth
    );
    assert_eq!(
        a.recovery_s.map(|s| s as u64),
        Some(15),
        "recovery time changed: {:?}",
        a.recovery_s
    );
    assert!(
        a.recovered_hit >= RECOVERY_FRACTION * a.pre_hit,
        "the cell must recover to within 5% of pre-surge"
    );
    // The pin holds bit-for-bit under sharded execution too.
    let mut sharded_cfg = chaos_flash_config(600, 2, 42);
    sharded_cfg.shards = 2;
    let (sharded_sys, sharded_r) = FlowerSystem::run(&sharded_cfg);
    assert_eq!(
        fingerprint(&sharded_sys, &sharded_r),
        fingerprint(&sys, &r),
        "2-shard flash cell diverged from the 1-shard run"
    );
}

/// The adaptive lookahead matrix is an execution detail like the
/// shard count and the queue backend: at --shards 1/2/4 it must
/// produce the bit-identical fingerprint of the global-floor
/// schedule, while synchronizing no more often (barrier epochs).
#[test]
fn lookahead_matrix_matches_global_floor_bit_for_bit() {
    use flower_cdn::simnet::LookaheadKind;
    let run = |shards: usize, kind: LookaheadKind| {
        let mut cfg = SystemConfig::small_test();
        cfg.seed = 42;
        cfg.shards = shards;
        cfg.topology.lookahead = kind;
        FlowerSystem::run(&cfg)
    };
    for shards in [1usize, 2, 4] {
        let (m_sys, m_report) = run(shards, LookaheadKind::Matrix);
        let (g_sys, g_report) = run(shards, LookaheadKind::GlobalFloor);
        assert_eq!(m_sys.engine().lookahead_kind(), LookaheadKind::Matrix);
        assert_eq!(g_sys.engine().lookahead_kind(), LookaheadKind::GlobalFloor);
        assert_eq!(
            fingerprint(&m_sys, &m_report),
            fingerprint(&g_sys, &g_report),
            "shards={shards}: lookahead modes diverged"
        );
        let (m_epochs, g_epochs) = (m_sys.engine().epochs(), g_sys.engine().epochs());
        if shards == 1 {
            assert_eq!((m_epochs, g_epochs), (0, 0), "no barrier on one shard");
        } else {
            assert!(g_epochs > 0, "sharded runs count barrier rounds");
            assert!(
                m_epochs < g_epochs,
                "shards={shards}: the matrix must synchronize less often \
                 ({m_epochs} vs {g_epochs} rounds)"
            );
        }
    }
}
