//! Cross-crate integration tests: full Flower-CDN simulations through
//! the public facade, exercising D-ring routing, content overlays,
//! gossip, pushes, and metrics plumbing together.

use flower_cdn::core::system::{FlowerSystem, SystemConfig};
use flower_cdn::core::FlowerConfig;
use flower_cdn::simnet::{Locality, SimDuration, TrafficClass};
use flower_cdn::workload::WebsiteId;

fn small(seed: u64) -> SystemConfig {
    SystemConfig {
        seed,
        ..SystemConfig::small_test()
    }
}

#[test]
fn full_pipeline_resolves_queries() {
    let (sys, r) = FlowerSystem::run(&small(1));
    assert!(r.submitted > 1_000);
    assert!(
        r.resolved as f64 >= r.submitted as f64 * 0.99,
        "{}/{}",
        r.resolved,
        r.submitted
    );
    assert!(r.hit_ratio > 0.4, "hit ratio {}", r.hit_ratio);
    // Every traffic class the protocol uses shows up.
    let t = sys.engine().traffic();
    for class in [
        TrafficClass::Gossip,
        TrafficClass::Push,
        TrafficClass::KeepAlive,
        TrafficClass::DhtRouting,
        TrafficClass::QueryControl,
        TrafficClass::Transfer,
    ] {
        assert!(t.total_sent(class) > 0, "no {class:?} traffic");
    }
}

#[test]
fn run_is_a_pure_function_of_the_seed() {
    let (_, a) = FlowerSystem::run(&small(77));
    let (_, b) = FlowerSystem::run(&small(77));
    assert_eq!(a.submitted, b.submitted);
    assert_eq!(a.resolved, b.resolved);
    assert_eq!(a.redirection_failures, b.redirection_failures);
    assert!((a.hit_ratio - b.hit_ratio).abs() < 1e-12);
    assert!((a.mean_lookup_ms - b.mean_lookup_ms).abs() < 1e-9);
    assert!((a.mean_transfer_ms - b.mean_transfer_ms).abs() < 1e-9);
    assert!((a.background_bps - b.background_bps).abs() < 1e-9);
}

#[test]
fn overlays_fill_and_respect_capacity() {
    let cfg = small(3);
    let (sys, _) = FlowerSystem::run(&cfg);
    let mut total_members = 0usize;
    for ws in 0..cfg.catalog.active_websites as u16 {
        for l in 0..cfg.topology.localities as u16 {
            let d = sys.initial_directory(WebsiteId(ws), Locality(l)).unwrap();
            let node = sys.engine().node(d);
            let role = node
                .dir_role()
                .expect("directory role intact without churn");
            assert!(
                role.dir.overlay_size() <= cfg.flower.max_overlay,
                "overlay exceeded Sco: {}",
                role.dir.overlay_size()
            );
            total_members += role.dir.overlay_size();
        }
    }
    assert!(total_members > 20, "overlays stayed empty: {total_members}");
}

#[test]
fn content_peers_cache_what_they_requested() {
    let cfg = small(4);
    let (sys, _) = FlowerSystem::run(&cfg);
    let ws = WebsiteId(0);
    let mut peers_with_content = 0;
    for l in 0..cfg.topology.localities as u16 {
        for n in sys.community(ws, Locality(l)) {
            if let Some(cp) = sys.engine().node(*n).content_role(ws) {
                assert!(cp.directory().is_some(), "member without directory");
                if cp.content_len() > 0 {
                    peers_with_content += 1;
                }
            }
        }
    }
    assert!(
        peers_with_content > 10,
        "only {peers_with_content} peers hold content"
    );
}

#[test]
fn gossip_views_converge_within_overlays() {
    let cfg = small(5);
    let (sys, _) = FlowerSystem::run(&cfg);
    let ws = WebsiteId(0);
    // After the run, members of an overlay should know several
    // overlay-mates (views seeded + gossip merge).
    let mut view_sizes = Vec::new();
    for l in 0..cfg.topology.localities as u16 {
        for n in sys.community(ws, Locality(l)) {
            if let Some(cp) = sys.engine().node(*n).content_role(ws) {
                view_sizes.push(cp.view().len());
                // Views only contain same-overlay members (never the
                // node itself).
                assert!(!cp.view().contains(*n));
            }
        }
    }
    let avg = view_sizes.iter().sum::<usize>() as f64 / view_sizes.len().max(1) as f64;
    assert!(
        avg >= 2.0,
        "average view size {avg} too small for a gossiping overlay"
    );
}

#[test]
fn dring_first_access_then_overlay() {
    // §3.4: D-ring serves only first accesses. Query-carrying DHT
    // routing should therefore be rare relative to the query volume
    // (the bulk of DhtRouting messages are finger-maintenance
    // lookups, which scale with time, not queries).
    let (sys, r) = FlowerSystem::run(&small(6));
    let t = sys.engine().traffic();
    let dht_msgs = t.messages_in(TrafficClass::DhtRouting);
    assert!(dht_msgs > 0, "new clients must route through D-ring");
    // Query routes are bounded by (first queries × hops) plus finger
    // lookups; allow both but require they stay well below several
    // messages per query.
    assert!(
        (dht_msgs as f64) < (r.resolved as f64) * 5.0,
        "D-ring used too often: {dht_msgs} routed msgs for {} queries",
        r.resolved
    );
}

#[test]
fn locality_awareness_keeps_hits_local() {
    let (_, r) = FlowerSystem::run(&small(7));
    assert!(
        r.local_hit_fraction > 0.5,
        "locality-aware redirection should keep most hits local: {}",
        r.local_hit_fraction
    );
}

#[test]
fn tighter_gossip_raises_hit_ratio() {
    // Table 2(b)'s shape at test scale: faster gossip ⇒ better hit
    // ratio (fresher summaries), more background traffic.
    let mut slow = small(8);
    slow.flower = FlowerConfig {
        t_gossip: SimDuration::from_mins(8),
        ..FlowerConfig::fast_test()
    };
    let mut fast = small(8);
    fast.flower = FlowerConfig {
        t_gossip: SimDuration::from_secs(5),
        ..FlowerConfig::fast_test()
    };
    let (_, rs) = FlowerSystem::run(&slow);
    let (_, rf) = FlowerSystem::run(&fast);
    assert!(
        rf.hit_ratio >= rs.hit_ratio,
        "fast gossip {:.3} should beat slow gossip {:.3}",
        rf.hit_ratio,
        rs.hit_ratio
    );
    assert!(
        rf.background_bps > rs.background_bps * 2.0,
        "fast gossip must cost more bandwidth ({:.1} vs {:.1})",
        rf.background_bps,
        rs.background_bps
    );
}

#[test]
fn queries_to_inactive_websites_would_be_served_too() {
    // The D-ring covers all 6 websites even though only 2 are active;
    // directories of inactive sites exist and are reachable.
    let cfg = small(9);
    let sys = FlowerSystem::build(&cfg);
    for ws in 0..cfg.catalog.num_websites as u16 {
        for l in 0..cfg.topology.localities as u16 {
            let d = sys.initial_directory(WebsiteId(ws), Locality(l)).unwrap();
            assert!(sys.engine().node(d).is_directory());
        }
    }
}
