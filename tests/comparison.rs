//! Flower-CDN vs Squirrel at test scale: the qualitative claims of
//! §6.3–6.4 must hold in any run long enough to warm up.

use flower_cdn::core::system::{FlowerSystem, SystemConfig};
use flower_cdn::squirrel::{SquirrelConfig, SquirrelSystem};

fn pair(
    seed: u64,
) -> (
    flower_cdn::core::SystemReport,
    flower_cdn::squirrel::SquirrelReport,
) {
    let fcfg = SystemConfig {
        seed,
        ..SystemConfig::small_test()
    };
    let scfg = SquirrelConfig {
        seed,
        ..SquirrelConfig::small_test()
    };
    let (_, f) = FlowerSystem::run(&fcfg);
    let (_, s) = SquirrelSystem::run(&scfg);
    (f, s)
}

/// §6.4 / Figure 7: locality-aware lookup beats DHT-per-query lookup.
#[test]
fn flower_lookup_latency_beats_squirrel() {
    let (f, s) = pair(31);
    assert!(
        f.mean_lookup_ms * 2.0 < s.mean_lookup_ms,
        "expected ≥2× lookup win, got flower {:.0} ms vs squirrel {:.0} ms",
        f.mean_lookup_ms,
        s.mean_lookup_ms
    );
}

/// §6.4 / Figure 8: transfers of P2P-served queries stay closer in
/// Flower-CDN (the paper uses the metric "with queries satisfied from
/// the P2P system"; self-hits and server fallbacks dilute the
/// all-queries mean at small scale).
#[test]
fn flower_transfer_distance_beats_squirrel() {
    let (f, s) = pair(32);
    assert!(
        f.mean_transfer_hit_ms < s.mean_transfer_hit_ms,
        "expected shorter P2P transfers, got flower {:.0} ms vs squirrel {:.0} ms",
        f.mean_transfer_hit_ms,
        s.mean_transfer_hit_ms
    );
}

/// §6.3 / Figure 6: Squirrel's single search space converges at least
/// as high as Flower-CDN's partitioned one; both must be substantial.
#[test]
fn hit_ratios_converge_with_squirrel_at_least_as_high() {
    let (f, s) = pair(33);
    assert!(s.hit_ratio > 0.5, "squirrel hit ratio {:.3}", s.hit_ratio);
    assert!(f.hit_ratio > 0.4, "flower hit ratio {:.3}", f.hit_ratio);
    assert!(
        s.hit_ratio > f.hit_ratio - 0.05,
        "partitioned search space should not beat the global one: {:.3} vs {:.3}",
        f.hit_ratio,
        s.hit_ratio
    );
}

/// Both systems resolve essentially every query they were given.
#[test]
fn both_systems_resolve_their_traces() {
    let (f, s) = pair(34);
    assert!(f.resolved as f64 >= f.submitted as f64 * 0.99);
    assert!(s.resolved as f64 >= s.submitted as f64 * 0.99);
    // Trace-identical workloads: same query counts.
    assert_eq!(
        f.submitted, s.submitted,
        "the two systems must see the same trace"
    );
}
