//! The tentpole guarantee of the pluggable-substrate refactor: the
//! Flower-CDN protocol behaves the same whichever DHT the D-ring runs
//! on (§3.1: "any existing structured overlay based on a standard
//! DHT, e.g., Chord, Pastry").
//!
//! One workload, one seed, two substrates — selected purely through
//! `SystemConfig`. The protocol above the substrate is identical, so
//! the headline metrics must essentially coincide; only the
//! substrate's internal routing and maintenance may differ.

use flower_cdn::core::substrate::SubstrateKind;
use flower_cdn::core::system::{FlowerSystem, SystemConfig, SystemReport};
use flower_cdn::simnet::Locality;
use flower_cdn::workload::WebsiteId;

fn run_on(kind: SubstrateKind, seed: u64) -> (FlowerSystem, SystemReport) {
    let mut cfg = SystemConfig::small_test();
    cfg.seed = seed;
    cfg.flower.substrate = kind;
    FlowerSystem::run(&cfg)
}

#[test]
fn same_workload_same_outcome_on_both_substrates() {
    let (chord_sys, chord) = run_on(SubstrateKind::Chord, 42);
    let (pastry_sys, pastry) = run_on(SubstrateKind::Pastry, 42);

    // The trace is a pure function of the seed, so both substrates see
    // the identical query stream.
    assert_eq!(
        chord.submitted, pastry.submitted,
        "same seed must produce the same trace"
    );
    assert_eq!(
        chord_sys.queries_scheduled(),
        pastry_sys.queries_scheduled()
    );

    // Both resolve essentially everything.
    for (name, r) in [("chord", &chord), ("pastry", &pastry)] {
        assert!(
            r.resolved as f64 >= r.submitted as f64 * 0.99,
            "{name}: resolved only {}/{}",
            r.resolved,
            r.submitted
        );
        assert!(
            r.hit_ratio > 0.5,
            "{name}: hit ratio {} too low",
            r.hit_ratio
        );
        assert!(
            r.participants > 20,
            "{name}: only {} participants",
            r.participants
        );
    }

    // The protocol above the substrate is unchanged: hit ratios land
    // within a sane tolerance of each other.
    let delta = (chord.hit_ratio - pastry.hit_ratio).abs();
    assert!(
        delta <= 0.05,
        "hit ratios diverged: chord {:.3} vs pastry {:.3} (Δ {delta:.3})",
        chord.hit_ratio,
        pastry.hit_ratio
    );
    // So do locality properties and lookup latencies (well under the
    // order-of-magnitude differences that would signal broken routing).
    let lookup_ratio = (chord.mean_lookup_ms.max(1.0)) / (pastry.mean_lookup_ms.max(1.0));
    assert!(
        (0.25..4.0).contains(&lookup_ratio),
        "lookup latencies diverged: chord {:.1} ms vs pastry {:.1} ms",
        chord.mean_lookup_ms,
        pastry.mean_lookup_ms
    );
}

#[test]
fn directory_deployment_is_substrate_independent() {
    // Role assignment happens above the substrate: the same nodes are
    // directories, servers, and community members under either DHT.
    let (chord_sys, _) = run_on(SubstrateKind::Chord, 9);
    let (pastry_sys, _) = run_on(SubstrateKind::Pastry, 9);
    for ws in 0..2u16 {
        for l in 0..3u16 {
            assert_eq!(
                chord_sys.initial_directory(WebsiteId(ws), Locality(l)),
                pastry_sys.initial_directory(WebsiteId(ws), Locality(l)),
                "directory assignment differs for ws{ws}/loc{l}"
            );
            assert_eq!(
                chord_sys.community(WebsiteId(ws), Locality(l)),
                pastry_sys.community(WebsiteId(ws), Locality(l)),
                "community differs for ws{ws}/loc{l}"
            );
        }
    }
    assert_eq!(chord_sys.servers(), pastry_sys.servers());
    // And the directory peers hold working substrate roles.
    let d = chord_sys
        .initial_directory(WebsiteId(0), Locality(0))
        .unwrap();
    for sys in [&chord_sys, &pastry_sys] {
        let role = sys.engine().node(d).dir_role().expect("directory role");
        assert!(
            !role.substrate.known_peers().is_empty(),
            "directory knows no substrate peers"
        );
        assert!(role.dir.overlay_size() > 0, "directory indexed nobody");
    }
}

#[test]
fn determinism_holds_per_substrate() {
    for kind in [SubstrateKind::Chord, SubstrateKind::Pastry] {
        let (_, a) = run_on(kind, 5);
        let (_, b) = run_on(kind, 5);
        assert_eq!(a.submitted, b.submitted, "{kind}: trace not deterministic");
        assert_eq!(
            a.resolved, b.resolved,
            "{kind}: resolution not deterministic"
        );
        assert!(
            (a.hit_ratio - b.hit_ratio).abs() < 1e-12,
            "{kind}: hit ratio not deterministic"
        );
        assert!(
            (a.background_bps - b.background_bps).abs() < 1e-9,
            "{kind}: traffic not deterministic"
        );
    }
}
