//! Integration tests for §5 of the paper: redirection failures,
//! directory failures (crash + voluntary leave), and locality
//! changes, exercised through full simulations.

use flower_cdn::core::system::{FlowerSystem, SystemConfig};
use flower_cdn::simnet::{ChurnConfig, ChurnScript, Locality, NodeId, SimDuration, SimTime};
use flower_cdn::workload::WebsiteId;

fn cfg(seed: u64) -> SystemConfig {
    SystemConfig {
        seed,
        ..SystemConfig::small_test()
    }
}

/// §5.2 crash recovery: kill a directory peer mid-run; a content peer
/// must take over its D-ring position and the overlay must keep
/// working.
#[test]
fn directory_crash_is_repaired_by_a_content_peer() {
    // Seed-sensitive: whether a §5.2 replacement wins the race against
    // stale gossip hints (which can re-advertise the dead directory
    // until Tdead ages them out) depends on the jitter draws. This
    // seed produces exactly one winner under the per-node RNG streams.
    let c = cfg(4);
    let mut sys = FlowerSystem::build(&c);
    let ws = WebsiteId(0);
    let loc = Locality(0);
    let old_dir = sys.initial_directory(ws, loc).unwrap();

    // Let the overlay form, then kill the directory.
    let kill_at = SimTime::from_mins(3);
    sys.apply_churn(&ChurnScript::kill_at(&[(kill_at, old_dir)]));
    sys.run_until(SimTime::from_ms(c.workload.duration_ms) + SimDuration::from_secs(30));

    // Someone from the community must now hold the directory role for
    // (ws0, loc0).
    let replacement: Vec<NodeId> = sys
        .community(ws, loc)
        .iter()
        .copied()
        .filter(|n| {
            let node = sys.engine().node(*n);
            node.dir_role()
                .map(|r| r.dir.website() == ws && r.dir.locality() == loc && node.is_directory())
                .unwrap_or(false)
        })
        .collect();
    assert_eq!(
        replacement.len(),
        1,
        "exactly one §5.2 winner expected, got {replacement:?}"
    );
    let winner = sys.engine().node(replacement[0]);
    assert!(winner.stats.replacements_won >= 1);
    // The new directory must have re-learnt members via pushes.
    assert!(
        winner.dir_role().unwrap().dir.overlay_size() > 0,
        "replacement directory should rebuild its index from pushes"
    );
    // Queries kept resolving.
    let r = sys.report();
    assert!(
        r.resolved as f64 > r.submitted as f64 * 0.95,
        "{}/{}",
        r.resolved,
        r.submitted
    );
}

/// §5.2 voluntary leave: the directory hands its index and ring
/// position to a chosen content peer via DirHandoff.
#[test]
fn voluntary_handoff_transfers_the_directory() {
    let c = cfg(22);
    let mut sys = FlowerSystem::build(&c);
    let ws = WebsiteId(0);
    let loc = Locality(0);
    let old_dir = sys.initial_directory(ws, loc).unwrap();

    // Run long enough for the overlay to form, then trigger the
    // voluntary leave through a scripted control event: we emulate the
    // leave by taking the node down *after* handing off.
    sys.run_until(SimTime::from_mins(4));
    // Drive the handoff directly through the engine (the operation an
    // operator would trigger before decommissioning a node).
    let target = {
        let node = sys.engine().node(old_dir);
        let role = node.dir_role().expect("old dir still in place");
        assert!(
            role.dir.overlay_size() > 0,
            "overlay empty; test needs members"
        );
        // The youngest member is the designated heir (the node picks
        // it itself inside voluntary_dir_handoff).
        role.dir.view_seed(1, old_dir)[0]
    };
    // The handoff needs a Ctx; emulate the §5.4/voluntary-leave path
    // by killing the old directory *after* the community formed and
    // checking a §5.2 replacement emerges — then separately verify the
    // DirHandoff message path via the public node API in-unit. Here we
    // exercise the end-to-end crash variant with a known heir present.
    sys.apply_churn(&ChurnScript::kill_at(&[(
        SimTime::from_mins(4) + SimDuration::from_secs(1),
        old_dir,
    )]));
    sys.run_until(SimTime::from_ms(c.workload.duration_ms) + SimDuration::from_secs(30));

    // The heir (or some member) took over.
    let took_over = sys.community(ws, loc).iter().any(|n| {
        sys.engine()
            .node(*n)
            .dir_role()
            .map(|r| r.dir.website() == ws)
            .unwrap_or(false)
    });
    assert!(
        took_over,
        "no member took over after the directory left (heir was {target:?})"
    );
}

/// §5.3 PetalUp + §5.2 voluntary leave: a *sibling* directory
/// instance that leaves hands its members back to the petal primary
/// and retires its slot for good — the primary must shrink the petal,
/// never re-activate the (alive but role-less) node on a later split,
/// and the system must keep resolving queries.
#[test]
fn sibling_retirement_permanently_caps_the_petal() {
    use flower_cdn::core::msg::FlowerMsg;
    use flower_cdn::simnet::Event;

    let mut c = cfg(42);
    c.flower.instance_bits = 2;
    c.flower.petal_split_threshold = 4;
    c.flower.petal_merge_floor = 2;
    c.workload.website_zipf_alpha = 1.5;
    let mut sys = FlowerSystem::build(&c);

    // Advance until some petal primary has actually split, then pick
    // its instance-1 sibling (deterministic: states are a pure
    // function of the config, the probe just reads them).
    let mut picked = None;
    'probe: for step_s in [30u64, 45, 60, 75, 90, 105, 120] {
        sys.run_until(SimTime::from_secs(step_s));
        let nodes: Vec<NodeId> = sys.engine().topology().node_ids().collect();
        for n in &nodes {
            let Some(role) = sys.engine().node(*n).dir_role() else {
                continue;
            };
            if role.petal.instance != 0 || role.petal.live <= 1 {
                continue;
            }
            let (ws, loc) = (role.dir.website(), role.dir.locality());
            let sibling = nodes.iter().copied().find(|m| {
                sys.engine().node(*m).dir_role().is_some_and(|r| {
                    r.dir.website() == ws && r.dir.locality() == loc && r.petal.instance == 1
                })
            });
            if let Some(sib) = sibling {
                picked = Some((*n, sib, ws, loc, step_s));
                break 'probe;
            }
        }
    }
    let (primary, sibling, ws, loc, at_s) = picked.expect("no petal split within 2 minutes");

    // The sibling leaves voluntarily.
    sys.engine_mut().schedule_at(
        SimTime::from_secs(at_s + 1),
        sibling,
        Event::Recv {
            from: sibling,
            msg: FlowerMsg::AdminLeave,
        },
    );
    sys.run_until(SimTime::from_secs(at_s + 30));
    assert!(
        sys.engine().node(sibling).dir_role().is_none(),
        "retired sibling must drop its directory role"
    );
    {
        let role = sys
            .engine()
            .node(primary)
            .dir_role()
            .expect("primary stays");
        assert!(role.petal.retired[1], "primary must record the retirement");
        assert_eq!(role.petal.live, 1, "petal must shrink below instance 1");
    }

    // To the horizon: instance 1 caps the petal at 1 forever (a split
    // over the role-less node would silently black-hole its share),
    // and the system keeps answering.
    sys.run_until(SimTime::from_ms(c.workload.duration_ms) + SimDuration::from_secs(30));
    let role = sys
        .engine()
        .node(primary)
        .dir_role()
        .expect("primary stays");
    assert_eq!(
        role.petal.live, 1,
        "petal (ws {ws:?}, loc {loc:?}) must never re-split over the retiree"
    );
    assert!(sys.engine().node(sibling).dir_role().is_none());
    let r = sys.report();
    assert!(
        r.resolved as f64 >= r.submitted as f64 * 0.99,
        "queries must keep resolving after the retirement ({}/{})",
        r.resolved,
        r.submitted
    );
}

/// §5.1 redirection failures: churn content peers so directory
/// entries go stale; queries must still resolve via retries.
#[test]
fn redirection_failures_are_retried() {
    let c = cfg(23);
    let mut sys = FlowerSystem::build(&c);
    let horizon = SimTime::from_ms(c.workload.duration_ms);
    let mut affected: Vec<NodeId> = Vec::new();
    for ws in 0..c.catalog.active_websites as u16 {
        for l in 0..c.topology.localities as u16 {
            let comm = sys.community(WebsiteId(ws), Locality(l));
            affected.extend(comm.iter().take(comm.len() / 2).copied());
        }
    }
    affected.sort_unstable_by_key(|n| n.0);
    affected.dedup();
    let churn = ChurnConfig {
        start: SimTime::from_mins(2),
        end: horizon,
        mean_session: SimDuration::from_mins(3),
        mean_downtime: SimDuration::from_secs(40),
        permanent: false,
    };
    sys.apply_churn(&ChurnScript::generate(&churn, &affected, 23));
    sys.run_until(horizon + SimDuration::from_secs(30));
    let r = sys.report();
    assert!(
        r.resolved as f64 > r.submitted as f64 * 0.9,
        "{}/{}",
        r.resolved,
        r.submitted
    );
    assert!(
        r.hit_ratio > 0.2,
        "hit ratio collapsed under churn: {}",
        r.hit_ratio
    );
}

/// Crashed peers rejoin as new clients (Event::NodeUp semantics) and
/// can become content peers again.
#[test]
fn revived_peers_rejoin_as_new_clients() {
    let c = cfg(24);
    let mut sys = FlowerSystem::build(&c);
    let ws = WebsiteId(0);
    let loc = Locality(0);
    let victim = sys.community(ws, loc)[0];
    // Down at minute 2, up at minute 4.
    sys.engine_mut()
        .schedule_down(SimTime::from_mins(2), victim);
    sys.engine_mut().schedule_up(SimTime::from_mins(4), victim);
    sys.run_until(SimTime::from_ms(c.workload.duration_ms) + SimDuration::from_secs(30));
    // The victim lost its state at the crash; if the workload sent it
    // queries afterwards it joined afresh (content role present) —
    // either way it must not hold stale pre-crash content silently.
    let node = sys.engine().node(victim);
    if let Some(cp) = node.content_role(ws) {
        assert!(
            cp.directory().is_some(),
            "rejoined member must know a directory"
        );
    }
    let r = sys.report();
    assert!(r.resolved > 0);
}

/// Directory entries age out (Tdead) for peers that stop sending
/// keepalives — overlay sizes shrink when half the community dies
/// permanently.
#[test]
fn dead_peers_age_out_of_the_directory_index() {
    let c = cfg(25);
    let mut sys = FlowerSystem::build(&c);
    let ws = WebsiteId(0);
    let loc = Locality(0);
    let comm = sys.community(ws, loc).to_vec();
    let horizon = SimTime::from_ms(c.workload.duration_ms);
    // Kill half the community permanently at 40% of the run.
    let kills: Vec<(SimTime, NodeId)> = comm
        .iter()
        .take(comm.len() / 2)
        .map(|n| (SimTime::from_ms(horizon.as_ms() * 2 / 5), *n))
        .collect();
    sys.apply_churn(&ChurnScript::kill_at(&kills));
    sys.run_until(horizon + SimDuration::from_secs(30));

    let d = sys.initial_directory(ws, loc).unwrap();
    let node = sys.engine().node(d);
    let dir = &node.dir_role().expect("directory alive").dir;
    for (_, n) in &kills {
        assert!(
            !dir.contains(*n),
            "dead peer {n:?} still in the directory index after Tdead"
        );
    }
}

/// The §5.3 sibling→primary control plane must survive a §5.2 primary
/// replacement: once the deployed instance-0 node is dead, sibling
/// load reports must stop being addressed to the corpse — the hint
/// resets on the first bounced report and re-points to whichever node
/// announces the next resize.
#[test]
fn sibling_load_reports_stop_chasing_a_dead_primary() {
    let mut c = cfg(42);
    c.flower.instance_bits = 2;
    c.flower.petal_split_threshold = 4;
    c.flower.petal_merge_floor = 2;
    c.workload.website_zipf_alpha = 1.5;
    let mut sys = FlowerSystem::build(&c);

    // Advance until some petal split (same deterministic probe as the
    // retirement test), keeping the instance-1 sibling in hand.
    let mut picked = None;
    'probe: for step_s in [30u64, 45, 60, 75, 90, 105, 120] {
        sys.run_until(SimTime::from_secs(step_s));
        let nodes: Vec<NodeId> = sys.engine().topology().node_ids().collect();
        for n in &nodes {
            let Some(role) = sys.engine().node(*n).dir_role() else {
                continue;
            };
            if role.petal.instance != 0 || role.petal.live <= 1 {
                continue;
            }
            let (ws, loc) = (role.dir.website(), role.dir.locality());
            let sibling = nodes.iter().copied().find(|m| {
                sys.engine().node(*m).dir_role().is_some_and(|r| {
                    r.dir.website() == ws && r.dir.locality() == loc && r.petal.instance == 1
                })
            });
            if let Some(sib) = sibling {
                picked = Some((*n, sib, ws, loc, step_s));
                break 'probe;
            }
        }
    }
    let (primary, sibling, ws, loc, at_s) = picked.expect("no petal split within 2 minutes");

    // The split's `PetalActivate` came from the deployed primary, so
    // right after the split the sibling's hint names it.
    {
        let role = sys.engine().node(sibling).dir_role().expect("sibling role");
        assert_eq!(
            role.petal.primary,
            Some(primary),
            "post-split hint must name the resize sender"
        );
    }

    // Kill the deployed primary and run to the horizon.
    sys.apply_churn(&ChurnScript::kill_at(&[(
        SimTime::from_secs(at_s + 1),
        primary,
    )]));
    sys.run_until(SimTime::from_ms(c.workload.duration_ms) + SimDuration::from_secs(30));

    // The surviving sibling no longer addresses the corpse: its next
    // load report bounced and reset the hint (falling back to the
    // deployed node until some §5.2 replacement's resize re-points
    // it), or a replacement already re-pointed it to itself.
    let role = sys
        .engine()
        .node(sibling)
        .dir_role()
        .expect("surviving sibling keeps its role");
    assert_ne!(
        role.petal.primary,
        Some(primary),
        "sibling must not keep reporting load to the dead primary"
    );
    if let Some(hinted) = role.petal.primary {
        assert!(
            sys.engine().is_up(hinted)
                && sys.engine().node(hinted).dir_role().is_some_and(|r| {
                    r.dir.website() == ws && r.dir.locality() == loc && r.petal.instance == 0
                }),
            "a re-pointed hint must name a live petal primary"
        );
    }
    let r = sys.report();
    assert!(
        r.resolved as f64 >= r.submitted as f64 * 0.95,
        "queries must keep resolving across the primary replacement ({}/{})",
        r.resolved,
        r.submitted
    );
}
