//! Integration tests for the implemented extensions: §8 active
//! replication, §8 cache replacement, §5.3 scale-up keys, and the
//! Squirrel home-store strategy.

use flower_cdn::core::system::{FlowerSystem, SystemConfig};
use flower_cdn::core::{CachePolicy, KeyScheme};
use flower_cdn::simnet::{Locality, SimDuration};
use flower_cdn::squirrel::{SquirrelConfig, SquirrelStrategy, SquirrelSystem};
use flower_cdn::workload::WebsiteId;

fn base(seed: u64) -> SystemConfig {
    SystemConfig {
        seed,
        ..SystemConfig::small_test()
    }
}

#[test]
fn active_replication_spreads_hot_objects() {
    let mut off = base(51);
    let mut on = base(51);
    on.flower.replication_period = Some(SimDuration::from_secs(20));
    on.flower.replication_top_k = 10;
    off.flower.replication_period = None;

    let (_, r_off) = FlowerSystem::run(&off);
    let (sys_on, r_on) = FlowerSystem::run(&on);

    // Replication must actually move objects: replica traffic exists.
    let t = sys_on.engine().traffic();
    assert!(
        t.total_sent(flower_cdn::simnet::TrafficClass::Push) > 0,
        "replication control plane silent"
    );
    // And must not hurt the system.
    assert!(
        r_on.hit_ratio >= r_off.hit_ratio - 0.05,
        "replication degraded hit ratio: {:.3} vs {:.3}",
        r_on.hit_ratio,
        r_off.hit_ratio
    );
    assert!(r_on.resolved as f64 >= r_on.submitted as f64 * 0.99);
}

#[test]
fn bounded_caches_evict_and_stay_consistent() {
    let mut cfg = base(52);
    cfg.flower.cache_policy = CachePolicy::Lru;
    cfg.flower.cache_capacity = 5; // tiny: heavy eviction churn
    let (sys, r) = FlowerSystem::run(&cfg);
    // Caches respect the bound.
    let ws = WebsiteId(0);
    for l in 0..cfg.topology.localities as u16 {
        for n in sys.community(ws, Locality(l)) {
            if let Some(cp) = sys.engine().node(*n).content_role(ws) {
                assert!(
                    cp.content_len() <= 5,
                    "peer {n:?} holds {} objects with capacity 5",
                    cp.content_len()
                );
            }
        }
    }
    // The system still works (hit ratio reduced but positive).
    assert!(r.hit_ratio > 0.05, "hit ratio collapsed: {}", r.hit_ratio);
    assert!(r.resolved as f64 >= r.submitted as f64 * 0.99);

    // Eviction pressure lowers the hit ratio vs unbounded.
    let (_, unbounded) = FlowerSystem::run(&base(52));
    assert!(
        r.hit_ratio <= unbounded.hit_ratio + 0.01,
        "tiny caches should not beat unbounded: {:.3} vs {:.3}",
        r.hit_ratio,
        unbounded.hit_ratio
    );
}

#[test]
fn lfu_policy_also_works_end_to_end() {
    let mut cfg = base(53);
    cfg.flower.cache_policy = CachePolicy::Lfu;
    cfg.flower.cache_capacity = 10;
    let (_, r) = FlowerSystem::run(&cfg);
    assert!(r.hit_ratio > 0.05);
    assert!(r.resolved as f64 >= r.submitted as f64 * 0.99);
}

#[test]
fn squirrel_home_store_strategy_serves_from_homes() {
    let mut cfg = SquirrelConfig {
        seed: 54,
        ..SquirrelConfig::small_test()
    };
    cfg.strategy = SquirrelStrategy::HomeStore;
    let (sys, r) = SquirrelSystem::run(&cfg);
    assert!(r.hit_ratio > 0.5, "home-store hit ratio {}", r.hit_ratio);
    assert!(r.resolved as f64 >= r.submitted as f64 * 0.99);
    // Homes actually accumulated replicas: total serves by peers > 0
    // even though no pointer directories exist.
    let serves: u64 = sys
        .participants()
        .iter()
        .map(|n| sys.engine().node(*n).stats.serves)
        .sum();
    assert!(serves > 0, "home nodes never served");
}

#[test]
fn squirrel_strategies_are_both_viable() {
    let dir_cfg = SquirrelConfig {
        seed: 55,
        ..SquirrelConfig::small_test()
    };
    let mut home_cfg = SquirrelConfig {
        seed: 55,
        ..SquirrelConfig::small_test()
    };
    home_cfg.strategy = SquirrelStrategy::HomeStore;
    let (_, rd) = SquirrelSystem::run(&dir_cfg);
    let (_, rh) = SquirrelSystem::run(&home_cfg);
    assert!(rd.hit_ratio > 0.5 && rh.hit_ratio > 0.5);
    // Same trace, comparable service.
    assert_eq!(rd.submitted, rh.submitted);
}

#[test]
fn scale_up_keys_route_consistently() {
    // §5.3: with b instance bits, several directory peers per
    // (website, locality) coexist as ring neighbours; standard routing
    // still finds each exactly.
    use flower_cdn::chord::{stable_ring, ChordConfig, PeerRef};
    use flower_cdn::simnet::NodeId;

    let scheme = KeyScheme::new(8, 2);
    let mut members = Vec::new();
    let mut idx = 0u32;
    for ws in 0..4u16 {
        for l in 0..3u16 {
            for inst in 0..4u32 {
                members.push(PeerRef {
                    id: scheme.key_with_instance(WebsiteId(ws), Locality(l), inst),
                    node: NodeId(idx),
                });
                idx += 1;
            }
        }
    }
    let states = stable_ring(&members, &ChordConfig::default());
    // Every member is responsible exactly for its own key.
    for (m, st) in members.iter().zip(&states) {
        assert!(st.is_responsible(m.id));
        for other in &members {
            if other.node != m.node {
                assert!(!st.is_responsible(other.id), "overlapping responsibility");
            }
        }
    }
}
