//! # flower-cdn — reproduction of the EDBT 2009 Flower-CDN paper
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`core`] (the `flower-core` crate) — the paper's contribution:
//!   the D-ring directory overlay over a pluggable
//!   [`core::substrate::DhtSubstrate`] and gossip-based content
//!   overlays;
//! * [`squirrel`] — the Squirrel baseline the paper compares against;
//! * [`simnet`] — the discrete-event network simulator substrate;
//! * [`chord`] — the Chord DHT substrate;
//! * [`pastry`] — the Pastry DHT substrate (the paper's other named
//!   overlay; backs the §3.1 portability claim — select it with
//!   `SystemConfig::flower.substrate`);
//! * [`gossip`] — age-based view/gossip machinery (Algorithms 4–6);
//! * [`bloom`] — Bloom-filter content summaries;
//! * [`workload`] — Zipf query workload generation (Table 1);
//! * [`experiments`] — the harness regenerating every table and
//!   figure of the paper's evaluation (§6).
//!
//! See `examples/quickstart.rs` for a five-minute tour and the
//! top-level `README.md` for the crate map and how to run the paper's
//! experiments.

pub use bloom;
pub use chord;
pub use experiments;
pub use flower_core as core;
pub use gossip;
pub use pastry;
pub use simnet;
pub use squirrel;
pub use workload;
