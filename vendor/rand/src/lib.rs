//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! shim provides the (small) surface of `rand 0.8` this workspace
//! actually uses: [`RngCore`], [`SeedableRng`], the generic [`Rng`]
//! extension trait (`gen`, `gen_range`, `gen_bool`), [`rngs::StdRng`]
//! and [`seq::SliceRandom`].
//!
//! `StdRng` is a xoshiro256++ generator seeded through SplitMix64 —
//! not the ChaCha12 of upstream `rand`, but deterministic, seedable
//! and of more than sufficient quality for discrete-event simulation.
//! All simulation results in this repository are a pure function of
//! the configured seeds, exactly as with the real crate (the concrete
//! stream of course differs).

/// Low-level generator interface: a source of uniform random bits.
pub trait RngCore {
    /// Next 32 uniform bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 uniform bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with uniform bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator constructible from a seed.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Construct from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64`, expanding it with SplitMix64 (the
    /// conventional approach; matches upstream's contract of a
    /// deterministic, seed-dependent stream).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64 { state };
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Types that can be sampled uniformly from a range by [`Rng::gen_range`].
pub trait SampleUniform: PartialOrd + Copy {
    /// Sample uniformly from `[low, high)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform_uint {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: low must be < high");
                let span = (high as u128) - (low as u128);
                // Rejection-free multiply-shift (Lemire); the tiny bias
                // over a 128-bit product is negligible for simulation.
                let r = rng.next_u64() as u128;
                low + ((r * span) >> 64) as $t
            }
        }
    )*};
}

impl_sample_uniform_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_uniform_int {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: low must be < high");
                let span = (high as i128 - low as i128) as u128;
                let r = rng.next_u64() as u128;
                (low as i128 + ((r * span) >> 64) as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low < high, "gen_range: low must be < high");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let v = low + unit * (high - low);
        // Guard against rounding up to the excluded bound.
        if v >= high {
            low
        } else {
            v
        }
    }
}

impl SampleUniform for f32 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        f64::sample_range(rng, low as f64, high as f64) as f32
    }
}

/// Values producible uniformly over their whole domain by [`Rng::gen`]
/// (floats: uniform in `[0, 1)`, as in upstream `rand`'s `Standard`).
pub trait Standard: Sized {
    /// Draw one value.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_from_u64 {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_from_u64!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// High-level convenience methods, blanket-implemented for every
/// [`RngCore`] (mirroring `rand::Rng`).
pub trait Rng: RngCore {
    /// A uniform value over the type's whole domain (floats: `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::draw(self)
    }

    /// A uniform value in `[range.start, range.end)`.
    fn gen_range<T: SampleUniform>(&mut self, range: std::ops::Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range.start, range.end)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1]");
        f64::draw(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ (Blackman &
    /// Vigna). Deterministic, 256-bit state, passes BigCrush.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        #[inline]
        fn rotl(x: u64, k: u32) -> u64 {
            x.rotate_left(k)
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = Self::rotl(s[0].wrapping_add(s[3]), 23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = Self::rotl(s[3], 45);
            result
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let bytes = self.next_u64().to_le_bytes();
                let n = chunk.len();
                chunk.copy_from_slice(&bytes[..n]);
            }
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks(8).enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(chunk);
                s[i] = u64::from_le_bytes(b);
            }
            // All-zero state is the one forbidden fixed point.
            if s == [0; 4] {
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0x6A09_E667_F3BC_C909,
                    0xBB67_AE85_84CA_A73B,
                    1,
                ];
            }
            StdRng { s }
        }
    }
}

/// Sequence-related helpers (mirroring `rand::seq`).
pub mod seq {
    use super::{RngCore, SampleUniform};

    /// Random selection and shuffling over slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// A uniformly chosen element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// `amount` distinct elements in random order (all of them if
        /// `amount >= len`). Returned as an iterator, like upstream.
        fn choose_multiple<R: RngCore + ?Sized>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> std::vec::IntoIter<&Self::Item>;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                let i = usize::sample_range(rng, 0, self.len());
                Some(&self[i])
            }
        }

        fn choose_multiple<R: RngCore + ?Sized>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> std::vec::IntoIter<&T> {
            let amount = amount.min(self.len());
            // Partial Fisher–Yates over an index vector.
            let mut idx: Vec<usize> = (0..self.len()).collect();
            for i in 0..amount {
                let j = usize::sample_range(rng, i, idx.len());
                idx.swap(i, j);
            }
            idx[..amount]
                .iter()
                .map(|&i| &self[i])
                .collect::<Vec<_>>()
                .into_iter()
        }

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = usize::sample_range(rng, 0, i + 1);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
        use super::RngCore;
        let _ = a.next_u32();
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(3u64..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(f64::MIN_POSITIVE..1.0);
            assert!(f > 0.0 && f < 1.0);
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            counts[rng.gen_range(0usize..10)] += 1;
        }
        for c in counts {
            assert!(
                (8_000..12_000).contains(&c),
                "bucket count {c} far from uniform"
            );
        }
    }

    #[test]
    fn slice_helpers() {
        let mut rng = StdRng::seed_from_u64(3);
        let xs: Vec<u32> = (0..50).collect();
        assert!(xs.choose(&mut rng).is_some());
        let empty: Vec<u32> = vec![];
        assert!(empty.choose(&mut rng).is_none());
        let picked: Vec<u32> = xs.choose_multiple(&mut rng, 10).copied().collect();
        assert_eq!(picked.len(), 10);
        let mut sorted = picked.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(
            sorted.len(),
            10,
            "choose_multiple must return distinct elements"
        );
        let over: Vec<u32> = xs.choose_multiple(&mut rng, 100).copied().collect();
        assert_eq!(over.len(), 50);
        let mut ys = xs.clone();
        ys.shuffle(&mut rng);
        let mut back = ys.clone();
        back.sort_unstable();
        assert_eq!(back, xs, "shuffle must be a permutation");
    }

    #[test]
    fn gen_bool_probability() {
        let mut rng = StdRng::seed_from_u64(4);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((25_000..35_000).contains(&hits));
    }
}
