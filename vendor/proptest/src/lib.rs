//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this shim
//! reimplements the slice of proptest this workspace uses: the
//! [`Strategy`] trait with `prop_map`, range/tuple/`any` strategies,
//! [`collection::vec`] / [`collection::btree_set`], the [`proptest!`]
//! macro (with optional `#![proptest_config(..)]`), and the
//! `prop_assert*` macros.
//!
//! Differences from upstream, by design:
//!
//! * **no shrinking** — a failing case panics with the generated
//!   inputs in the assertion message instead of a minimized one;
//! * **derived determinism** — each test's input stream is seeded from
//!   a hash of the test's name, so failures reproduce exactly across
//!   runs and machines.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The RNG driving input generation.
pub type TestRng = StdRng;

/// Deterministic per-test RNG (FNV-1a over the test name).
pub fn test_rng(name: &str) -> TestRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    StdRng::seed_from_u64(h)
}

/// Runner configuration: how many random cases each property runs.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A generator of random test inputs.
pub trait Strategy {
    /// The generated input type.
    type Value;

    /// Draw one input.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated inputs with `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The [`Strategy::prop_map`] adapter.
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn new_value(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.new_value(rng))
    }
}

impl<T: rand::SampleUniform> Strategy for std::ops::Range<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.start..self.end)
    }
}

/// Strategy for a uniform value over a type's whole domain (the shim's
/// analogue of proptest's `Arbitrary`).
#[derive(Clone, Copy, Debug)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// A uniform value over `T`'s whole domain (floats: `[0, 1)`).
pub fn any<T: rand::Standard>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: rand::Standard> Strategy for Any<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        T::draw(rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($($s:ident / $v:ident),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($v,)+) = self;
                ($($v.new_value(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A / a);
impl_tuple_strategy!(A / a, B / b);
impl_tuple_strategy!(A / a, B / b, C / c);
impl_tuple_strategy!(A / a, B / b, C / c, D / d);
impl_tuple_strategy!(A / a, B / b, C / c, D / d, E / e);

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// A `Vec` of `size` (drawn from `sizes`) elements of `element`.
    pub fn vec<S: Strategy>(element: S, sizes: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, sizes }
    }

    /// See [`vec`].
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        sizes: std::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = if self.sizes.start >= self.sizes.end {
                self.sizes.start
            } else {
                rng.gen_range(self.sizes.start..self.sizes.end)
            };
            (0..n).map(|_| self.element.new_value(rng)).collect()
        }
    }

    /// A `BTreeSet` of distinct elements of `element`; sizes below the
    /// requested minimum can occur only if the element domain is
    /// smaller than the minimum.
    pub fn btree_set<S>(element: S, sizes: std::ops::Range<usize>) -> BTreeSetStrategy<S> {
        BTreeSetStrategy { element, sizes }
    }

    /// See [`btree_set`].
    #[derive(Clone, Debug)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        sizes: std::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = std::collections::BTreeSet<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            let n = if self.sizes.start >= self.sizes.end {
                self.sizes.start
            } else {
                rng.gen_range(self.sizes.start..self.sizes.end)
            };
            let mut out = std::collections::BTreeSet::new();
            let mut attempts = 0usize;
            while out.len() < n && attempts < n.saturating_mul(20) + 100 {
                out.insert(self.element.new_value(rng));
                attempts += 1;
            }
            out
        }
    }
}

/// Everything a property-test module needs.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Any,
        ProptestConfig, Strategy,
    };
}

/// Assert inside a property (shim: a plain panic-on-failure assert).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Skip the current case when the assumption does not hold (shim:
/// early-returns from the generated per-case closure).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return;
        }
    };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Define property tests: each `fn name(arg in strategy, ..) { .. }`
/// becomes a `#[test]` running `cases` random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ cfg = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = ($cfg:expr); ) => {};
    (cfg = ($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::test_rng(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__config.cases {
                $(let $arg = $crate::Strategy::new_value(&($strat), &mut __rng);)+
                // A closure so `prop_assume!` can skip the case by
                // returning early.
                let mut __case_fn = || $body;
                __case_fn();
            }
        }
        $crate::__proptest_impl!{ cfg = ($cfg); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in 3u64..17, f in -2.0f64..2.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.0..2.0).contains(&f));
        }

        #[test]
        fn collections_and_maps(
            xs in collection::vec(0u32..100, 1..20),
            s in collection::btree_set(any::<u64>(), 2..10),
            pair in (0u8..5, any::<bool>()).prop_map(|(a, b)| (a as u16, b)),
        ) {
            prop_assert!(!xs.is_empty() && xs.len() < 20);
            prop_assert!(xs.iter().all(|v| *v < 100));
            prop_assert!(s.len() >= 2 && s.len() < 10);
            prop_assert!(pair.0 < 5);
        }
    }

    #[test]
    fn deterministic_streams() {
        let mut a = crate::test_rng("x");
        let mut b = crate::test_rng("x");
        let s = 0u64..1000;
        let xs: Vec<u64> = (0..32)
            .map(|_| crate::Strategy::new_value(&s, &mut a))
            .collect();
        let ys: Vec<u64> = (0..32)
            .map(|_| crate::Strategy::new_value(&s, &mut b))
            .collect();
        assert_eq!(xs, ys);
    }
}
