//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this shim
//! provides the benchmarking surface the workspace's benches use —
//! [`Criterion`], benchmark groups, `bench_function` /
//! `bench_with_input`, `iter` / `iter_batched`, [`black_box`] and the
//! [`criterion_group!`] / [`criterion_main!`] macros — backed by a
//! simple wall-clock timer instead of criterion's statistics engine.
//!
//! Each benchmark is warmed up briefly, then timed over enough
//! iterations to fill a short measurement budget; the mean ns/iter is
//! printed. Good enough to spot order-of-magnitude regressions, which
//! is all a network-less container can promise.

use std::time::{Duration, Instant};

/// Opaque value barrier (stable-Rust best effort).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Batch sizing hints for [`Bencher::iter_batched`] (accepted for API
/// compatibility; the shim always runs one setup per iteration).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One batch per iteration.
    PerIteration,
}

/// Identifier for a parameterized benchmark.
#[derive(Clone, Debug)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id rendering just the parameter value.
    pub fn from_parameter<P: std::fmt::Display>(p: P) -> Self {
        BenchmarkId(p.to_string())
    }

    /// An id with a function name and a parameter value.
    pub fn new<S: Into<String>, P: std::fmt::Display>(name: S, p: P) -> Self {
        BenchmarkId(format!("{}/{}", name.into(), p))
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// The timing context handed to benchmark closures.
pub struct Bencher {
    /// Total time measured for the routine.
    elapsed: Duration,
    /// Iterations measured.
    iters: u64,
    /// Measurement budget.
    budget: Duration,
}

impl Bencher {
    /// Time `routine` repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up and per-iteration cost estimate.
        let warm = Instant::now();
        black_box(routine());
        let once = warm.elapsed().max(Duration::from_nanos(1));
        let target = (self.budget.as_nanos() / once.as_nanos().max(1)).clamp(1, 1_000_000) as u64;
        let start = Instant::now();
        for _ in 0..target {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
        self.iters = target;
    }

    /// Time `routine` over fresh inputs from `setup` (setup excluded
    /// from the measurement).
    pub fn iter_batched<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) {
        let input = setup();
        let warm = Instant::now();
        black_box(routine(input));
        let once = warm.elapsed().max(Duration::from_nanos(1));
        let target = (self.budget.as_nanos() / once.as_nanos().max(1)).clamp(1, 1_000_000) as u64;
        let mut measured = Duration::ZERO;
        for _ in 0..target {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            measured += start.elapsed();
        }
        self.elapsed = measured;
        self.iters = target;
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim sizes runs by time.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Run one benchmark.
    pub fn bench_function<S: std::fmt::Display, F: FnMut(&mut Bencher)>(
        &mut self,
        id: S,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            elapsed: Duration::ZERO,
            iters: 0,
            budget: Duration::from_millis(300),
        };
        f(&mut b);
        report(&self.name, &id.to_string(), &b);
        self
    }

    /// Run one parameterized benchmark.
    pub fn bench_with_input<I, S: std::fmt::Display, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: S,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            elapsed: Duration::ZERO,
            iters: 0,
            budget: Duration::from_millis(300),
        };
        f(&mut b, input);
        report(&self.name, &id.to_string(), &b);
        self
    }

    /// End the group.
    pub fn finish(self) {}
}

fn report(group: &str, id: &str, b: &Bencher) {
    if b.iters == 0 {
        println!("{group}/{id}: not measured");
        return;
    }
    let ns = b.elapsed.as_nanos() as f64 / b.iters as f64;
    println!("{group}/{id}: {ns:.0} ns/iter ({} iters)", b.iters);
}

/// The bench harness entry point.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named group.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _parent: self,
        }
    }

    /// Run one ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            elapsed: Duration::ZERO,
            iters: 0,
            budget: Duration::from_millis(300),
        };
        f(&mut b);
        report("bench", id, &b);
        self
    }
}

/// Bundle benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emit `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
